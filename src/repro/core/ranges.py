"""Equation 1: the value ranges owned by each cell of a Pool.

A Pool of side length ``l`` is a value-space index over two derived
attributes of every event it stores: the greatest value ``V_d1``
(horizontal axis → column) and the second greatest value ``V_d2``
(vertical axis → row).  Equation 1 of the paper assigns each cell at
offsets ``(HO, VO)`` from the pivot:

    Range_H(C) = [ HO / l,            (HO + 1) / l )
    Range_V(C) = [ VO·(HO+1) / l²,    (VO+1)·(HO+1) / l² )

Each column's vertical ranges evenly split ``[0, upper bound of the
column's horizontal range)`` — reflecting the invariant ``V_d2 <= V_d1``:
an event in column ``HO`` has ``V_d1 < (HO+1)/l``, hence its ``V_d2`` also
fits under ``(HO+1)/l``.

Boundary semantics
------------------
Ranges are half-open except at the top of the unit interval: an event with
``V_d1 == 1.0`` belongs to the last column (offset ``l-1``), and likewise
for rows.  The inverse maps (:func:`ho_for_value`, :func:`vo_for_value`)
clamp accordingly, and the intersection predicates used by the resolver
close the upper bound on the top cells so no boundary event can escape a
query (tested property: resolve covers every placement).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError, ValidationError

__all__ = [
    "horizontal_range",
    "vertical_range",
    "cell_value_ranges",
    "ho_for_value",
    "vo_for_value",
    "ranges_intersect",
]


def _check_side(side_length: int) -> None:
    if side_length < 1:
        raise ConfigurationError(f"side_length must be >= 1, got {side_length}")


def _check_offset(offset: int, side_length: int, name: str) -> None:
    if not 0 <= offset <= side_length - 1:
        raise ValidationError(
            f"{name}={offset} outside 0..{side_length - 1} for side length {side_length}"
        )


def horizontal_range(ho: int, side_length: int) -> tuple[float, float]:
    """``Range_H`` of any cell in column offset ``ho`` (Equation 1)."""
    _check_side(side_length)
    _check_offset(ho, side_length, "HO")
    return (ho / side_length, (ho + 1) / side_length)


def vertical_range(ho: int, vo: int, side_length: int) -> tuple[float, float]:
    """``Range_V`` of the cell at offsets ``(ho, vo)`` (Equation 1)."""
    _check_side(side_length)
    _check_offset(ho, side_length, "HO")
    _check_offset(vo, side_length, "VO")
    l_sq = side_length * side_length
    return (vo * (ho + 1) / l_sq, (vo + 1) * (ho + 1) / l_sq)


def cell_value_ranges(
    ho: int, vo: int, side_length: int
) -> tuple[tuple[float, float], tuple[float, float]]:
    """Both ranges of a cell: ``(Range_H, Range_V)``."""
    return (
        horizontal_range(ho, side_length),
        vertical_range(ho, vo, side_length),
    )


def ho_for_value(v_d1: float, side_length: int) -> int:
    """Column offset for a greatest value: ``HO = floor(V_d1 · l)``.

    Theorem 3.1, clamped so that ``V_d1 == 1.0`` lands in the last column.
    """
    _check_side(side_length)
    if not 0.0 <= v_d1 <= 1.0:
        raise ValidationError(f"V_d1={v_d1} outside [0, 1]")
    return min(int(v_d1 * side_length), side_length - 1)


def vo_for_value(v_d2: float, ho: int, side_length: int) -> int:
    """Row offset: ``VO = floor(V_d2 · l² / (HO + 1))`` (Theorem 3.1).

    Clamped to the top row for the boundary case ``V_d2`` equal to the
    column's horizontal upper bound (only reachable when values tie or
    equal 1.0).
    """
    _check_side(side_length)
    _check_offset(ho, side_length, "HO")
    if not 0.0 <= v_d2 <= 1.0:
        raise ValidationError(f"V_d2={v_d2} outside [0, 1]")
    return min(
        int(v_d2 * side_length * side_length / (ho + 1)),
        side_length - 1,
    )


def ranges_intersect(
    cell_range: tuple[float, float],
    query_range: tuple[float, float],
    *,
    closed_top: bool,
) -> bool:
    """Whether a half-open cell range meets a closed query range.

    ``cell_range`` is ``[a, b)`` — or ``[a, b]`` when ``closed_top`` marks
    a topmost cell — and ``query_range`` is the closed ``[L, U]`` from
    Theorem 3.2.  Intersection requires ``a <= U`` and ``L < b`` (``<=``
    when closed).
    """
    a, b = cell_range
    lo, hi = query_range
    if a > hi:
        return False
    if closed_top:
        return lo <= b
    return lo < b
