"""Event placement: Theorem 3.1 / Algorithm 1 and the Section 4.1 rule.

Deciding where a k-dimensional event lives takes two arithmetic steps and
zero search:

1. **Pool** — the dimension ``d_1`` of the greatest value picks ``P_d1``.
2. **Cell** — the greatest and second-greatest values pick the offsets
   (Theorem 3.1)::

       HO = floor(V_d1 · l)
       VO = floor(V_d2 · l² / (HO + 1))

When several dimensions tie for the greatest value (Section 4.1) the event
has one candidate placement per tied dimension; the system stores a
*single* copy at the candidate closest to the detecting sensor — never
multiple copies, which would inflate communication and corrupt aggregates.
Queries still find the event because the resolver visits every Pool whose
derived ranges admit it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ranges import ho_for_value, vo_for_value
from repro.events.event import Event
from repro.exceptions import ConfigurationError

__all__ = ["Placement", "placement_for", "candidate_placements"]


@dataclass(frozen=True, slots=True)
class Placement:
    """A target location in value space: Pool index plus cell offsets."""

    pool: int
    ho: int
    vo: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Placement(P{self.pool + 1}, HO={self.ho}, VO={self.vo})"


def placement_for(event: Event, side_length: int) -> Placement:
    """The canonical placement of ``event`` (Theorem 3.1).

    Ties for the greatest value resolve to the lowest dimension index; use
    :func:`candidate_placements` when the §4.1 closest-candidate rule
    should apply.
    """
    if side_length < 1:
        raise ConfigurationError(f"side_length must be >= 1, got {side_length}")
    v_d1 = event.greatest_value
    v_d2 = event.second_greatest_value
    ho = ho_for_value(v_d1, side_length)
    vo = vo_for_value(v_d2, ho, side_length)
    return Placement(pool=event.d1, ho=ho, vo=vo)


def candidate_placements(event: Event, side_length: int) -> list[Placement]:
    """Every legal placement of ``event`` (Section 4.1).

    With a unique greatest value this is the singleton ``[placement_for]``.
    With ``t`` tied greatest dimensions there are ``t`` candidates — one
    per tied Pool — all at the same ``(HO, VO)`` offsets, because in every
    tied Pool both the greatest and the second-greatest value equal the
    tied maximum (e.g. ``<0.4, 0.4, 0.2>`` may live in ``P_1`` or ``P_2``).
    """
    if side_length < 1:
        raise ConfigurationError(f"side_length must be >= 1, got {side_length}")
    tied = event.greatest_dimensions()
    if len(tied) == 1:
        return [placement_for(event, side_length)]
    top = event.greatest_value
    ho = ho_for_value(top, side_length)
    # In each tied pool the second-greatest value is the tied maximum
    # itself (it appears in at least one other dimension).
    vo = vo_for_value(top, ho, side_length)
    return [Placement(pool=dim, ho=ho, vo=vo) for dim in tied]
