"""Continuous (standing) queries over a Pool system.

The paper's closing section names "continuous monitoring" as the
capability being added to Pool next; this module provides it on top of
the published machinery, using the same Theorem 3.2 resolution:

1. **Register** — the sink resolves the standing query's relevant cells
   (Algorithm 2) and disseminates a subscription along the usual
   splitter trees (one-time cost, identical tree to a one-shot query's
   forward phase).
2. **Match at insert** — each subscribed cell holder checks newly stored
   events against its registered queries locally (zero messages).
3. **Notify** — a qualifying new event is pushed from its holder to the
   subscribing sink over GPSR (``NOTIFY`` messages).

Because insertion places an event only in cells that Algorithm 2 lists as
relevant for any query the event satisfies (the resolve-covers-placement
invariant), a subscription registered at the relevant cells can never
miss a future event — the same soundness argument as one-shot queries.

Limitation mirroring the paper's design: a subscription is anchored to
the cells relevant *at registration time*; cells split by workload
sharing inherit their ancestors' subscriptions (handled in
:meth:`ContinuousQueryService._on_insert` by matching on the cell, not
the holder).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.insertion import Placement
from repro.core.resolve import relevant_offsets
from repro.core.system import PoolSystem
from repro.events.event import Event
from repro.events.queries import RangeQuery
from repro.exceptions import DimensionMismatchError, QueryError
from repro.network.messages import MessageCategory

__all__ = ["Subscription", "ContinuousQueryService"]


@dataclass(slots=True)
class Subscription:
    """One registered standing query."""

    sub_id: int
    sink: int
    query: RangeQuery
    #: (pool, ho, vo) triples the subscription is anchored to.
    cells: frozenset[tuple[int, int, int]]
    registration_cost: int = 0
    notifications: int = 0
    matched_events: list[Event] = field(default_factory=list)
    active: bool = True


class ContinuousQueryService:
    """Standing-query layer over one :class:`PoolSystem`.

    Construct it once per system; it hooks the system's insert path::

        service = ContinuousQueryService(pool)
        sub = service.register(sink=0, query=RangeQuery.partial(3, {0: (0.9, 1.0)}))
        ...  # inserts now push matching events to node 0
        service.unregister(sub)
    """

    def __init__(self, system: PoolSystem) -> None:
        self.system = system
        self._ids = itertools.count(1)
        self._subscriptions: dict[int, Subscription] = {}
        # cell -> subscription ids anchored there.
        self._by_cell: dict[tuple[int, int, int], set[int]] = {}
        self._closed = False
        system.insert_listeners.append(self._on_insert)

    def close(self) -> None:
        """Detach the insert hook from the system.  Idempotent.

        Without this, every service constructed over a system left its
        ``_on_insert`` registered forever — on a reused deployment the
        dead services kept matching (and charging NOTIFY messages for)
        later trials' inserts.  Call it when the service is done; the
        system's own ``close()`` also severs the hook from its side.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.system.insert_listeners.remove(self._on_insert)
        except ValueError:
            # The system already tore its listener list down.
            pass

    # ------------------------------------------------------------------ #
    # Registration                                                       #
    # ------------------------------------------------------------------ #

    def register(self, sink: int, query: RangeQuery) -> Subscription:
        """Install a standing query; returns the live subscription.

        Costs one query-forward dissemination (sink → splitters →
        relevant cells) recorded under ``QUERY_FORWARD``.
        """
        if query.dimensions != self.system.dimensions:
            raise DimensionMismatchError(
                self.system.dimensions, query.dimensions, "query"
            )
        network = self.system.network
        before = network.stats.count(MessageCategory.QUERY_FORWARD)
        cells: set[tuple[int, int, int]] = set()
        for pool in self.system.pools:
            offsets = relevant_offsets(query, pool.index, self.system.side_length)
            if not offsets:
                continue
            destinations = {
                self.system.index_node(pool.cell_at(ho, vo)) for ho, vo in offsets
            }
            splitter = self.system.splitter(sink, pool.index)
            network.unicast(MessageCategory.QUERY_FORWARD, sink, splitter)
            network.multicast(
                MessageCategory.QUERY_FORWARD, splitter, sorted(destinations)
            )
            cells.update((pool.index, ho, vo) for ho, vo in offsets)
        cost = network.stats.count(MessageCategory.QUERY_FORWARD) - before
        subscription = Subscription(
            sub_id=next(self._ids),
            sink=sink,
            query=query,
            cells=frozenset(cells),
            registration_cost=cost,
        )
        self._subscriptions[subscription.sub_id] = subscription
        for cell in sorted(cells):
            self._by_cell.setdefault(cell, set()).add(subscription.sub_id)
        return subscription

    def unregister(self, subscription: Subscription) -> None:
        """Tear down a subscription (local bookkeeping; the cancel message
        would retrace the registration tree — charged the same way)."""
        stored = self._subscriptions.pop(subscription.sub_id, None)
        if stored is None:
            raise QueryError(f"subscription {subscription.sub_id} is not active")
        stored.active = False
        for cell in stored.cells:
            anchored = self._by_cell.get(cell)
            if anchored is not None:
                anchored.discard(stored.sub_id)
                if not anchored:
                    del self._by_cell[cell]
        # The cancellation retraces the registration paths.
        self.system.network.stats.record(
            MessageCategory.QUERY_FORWARD, stored.registration_cost
        )

    @property
    def active_subscriptions(self) -> tuple[Subscription, ...]:
        return tuple(self._subscriptions.values())

    # ------------------------------------------------------------------ #
    # Insert hook                                                        #
    # ------------------------------------------------------------------ #

    def _on_insert(self, placement: Placement, event: Event, holder: int) -> None:
        cell_key = (placement.pool, placement.ho, placement.vo)
        sub_ids = self._by_cell.get(cell_key)
        if not sub_ids:
            return
        for sub_id in tuple(sub_ids):
            subscription = self._subscriptions[sub_id]
            if not subscription.query.matches(event):
                continue
            subscription.notifications += 1
            subscription.matched_events.append(event)
            if holder != subscription.sink:
                self.system.network.unicast(
                    MessageCategory.NOTIFY, holder, subscription.sink
                )

    # ------------------------------------------------------------------ #
    # Accounting                                                         #
    # ------------------------------------------------------------------ #

    def notify_cost(self) -> int:
        """Total NOTIFY messages pushed so far (from the shared ledger)."""
        return self.system.network.stats.count(MessageCategory.NOTIFY)
