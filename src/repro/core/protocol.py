"""Distributed execution of Pool queries on the discrete-event simulator.

The benchmark harness accounts for queries synchronously (GPSR paths and
forwarding trees are deterministic).  This module is the proof that the
accounting corresponds to a real protocol: it runs the *same* query as
asynchronous message passing —

1. the sink unicasts the query to each Pool's splitter, hop by hop;
2. the splitter disseminates it down the forwarding tree, one radio
   transmission per tree edge, children in parallel;
3. each holder answers from local storage; a node sends its (aggregated)
   reply upstream only once all of its subtree's replies arrived —
   in-network aggregation exactly as Section 3.2.3 describes;
4. the splitter relays the Pool's combined answer back to the sink.

``tests/core/test_protocol.py`` asserts that the events returned and the
per-category message counts equal :meth:`PoolSystem.query`'s synchronous
result, message for message.

The query packet carries its forwarding tree (source routing), which is
how small dissemination trees are shipped in practice; holders do not
need global knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, TYPE_CHECKING

from repro.core.resolve import query_ranges_for_pool, relevant_offsets
from repro.core.system import PoolSystem
from repro.events.event import Event
from repro.events.queries import RangeQuery
from repro.exceptions import DimensionMismatchError, QueryError
from repro.network.messages import MessageCategory
from repro.network.simulator import Simulator
from repro.routing.multicast import MulticastTree, TreeBuilder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.spans import SpanRecorder

__all__ = ["DistributedQueryRun", "fold_reply_tree", "run_query_on_simulator"]


def fold_reply_tree(
    tree: MulticastTree, leaf_events: Mapping[int, Sequence[Event]]
) -> list[Event]:
    """The canonical reply-tree aggregation: one deterministic fold.

    Every node's partial reply is its own stored events followed by its
    children's partials in sorted-child order — the in-network
    aggregation rule of Section 3.2.3, fixed to a single canonical order
    so it can serve as the reference both for the event-driven execution
    below and for the sharded engine's cross-shard folding
    (:func:`repro.shard.merge.fold_shard_replies` produces exactly this
    list for any shard ownership, which is what makes sharded reply
    aggregation provably equivalent rather than approximately so).
    """
    children = tree.children()
    partial: dict[int, list[Event]] = {}
    order = sorted(tree.nodes(), key=lambda n: (-tree.depth_of(n), n))
    for node in order:
        events = list(leaf_events.get(node, ()))
        for child in children.get(node, ()):
            events.extend(partial.pop(child))
        partial[node] = events
    return partial[tree.root]


@dataclass(slots=True)
class DistributedQueryRun:
    """Outcome of one event-driven query execution.

    ``unreachable_nodes`` lists tree nodes whose answers never made it to
    the sink (a relay or holder died while the query was in flight); the
    run still completes gracefully with whatever the surviving branches
    returned.
    """

    events: list[Event]
    forward_cost: int
    reply_cost: int
    completed_at: float
    pools_visited: int
    unreachable_nodes: tuple[int, ...] = ()

    @property
    def total_cost(self) -> int:
        return self.forward_cost + self.reply_cost

    @property
    def complete(self) -> bool:
        """Did every launched branch deliver its answer?"""
        return not self.unreachable_nodes


@dataclass(slots=True)
class _PoolRun:
    """Mutable per-Pool execution state (reply aggregation bookkeeping)."""

    tree: MulticastTree
    children: dict[int, list[int]]
    pending: dict[int, int] = field(default_factory=dict)
    partials: dict[int, list[Event]] = field(default_factory=dict)
    failed: set[int] = field(default_factory=set)
    done: bool = False


class _Execution:
    """Drives one query across all Pools and collects the grand reply."""

    def __init__(
        self,
        system: PoolSystem,
        simulator: Simulator,
        sink: int,
        query: RangeQuery,
        recorder: "SpanRecorder | None" = None,
    ) -> None:
        self.system = system
        self.simulator = simulator
        self.sink = sink
        self.query = query
        self.recorder = recorder
        self.events: list[Event] = []
        self.outstanding_pools = 0
        self.pools_visited = 0
        self.completed_at = 0.0
        self.unreachable: set[int] = set()

    # ---------------------------- dissemination ----------------------- #

    def start(self) -> None:
        for pool in self.system.pools:
            offsets = relevant_offsets(
                self.query,
                pool.index,
                self.system.side_length,
                recorder=self.recorder,
            )
            if not offsets:
                continue
            self.outstanding_pools += 1
            self.pools_visited += 1
            derived = query_ranges_for_pool(self.query, pool.index)
            destinations: dict[int, None] = {}
            holders_events: dict[int, list[Event]] = {}
            for ho, vo in offsets:
                cell = pool.cell_at(ho, vo)
                store = self.system._stores.get((pool.index, ho, vo))
                if store is None:
                    destinations.setdefault(self.system.index_node(cell))
                    continue
                for segment in store.segments_overlapping(derived.vertical):
                    destinations.setdefault(segment.node)
                    bucket = holders_events.setdefault(segment.node, [])
                    for event in segment.events:
                        if self.query.matches(event):
                            bucket.append(event)
            splitter = self.system.splitter(self.sink, pool.index)
            self._launch_pool(splitter, list(destinations), holders_events)

    def _launch_pool(
        self,
        splitter: int,
        destinations: list[int],
        holders_events: dict[int, list[Event]],
    ) -> None:
        sim = self.simulator
        builder = TreeBuilder(sim.router, splitter, recorder=self.recorder)
        builder.add_destinations(destinations)
        tree = builder.build()
        if self.recorder is not None:
            # One planned-dissemination span per Pool: the event-driven
            # run charges exactly one forward and one reply per tree edge
            # plus the sink<->splitter legs, so the cost is known at
            # launch (tests assert hop-for-hop agreement with the
            # synchronous accounting).
            self.recorder.record(
                "pool-dissemination",
                phase="simulate",
                messages=2 * (len(sim.router.path(self.sink, splitter)) - 1)
                + 2 * len(tree.edges),
                nodes=tree.nodes(),
                splitter=splitter,
                destinations=len(destinations),
            )
        run = _PoolRun(tree=tree, children=tree.children())
        # pending = own children count; a node replies upstream once all
        # of its children replied (leaves reply immediately).
        for node in tree.nodes():
            run.pending[node] = len(run.children.get(node, ()))
            run.partials[node] = list(holders_events.get(node, ()))
        sink_path = sim.router.path(self.sink, splitter)

        parents = {child: parent for parent, child in sorted(tree.edges)}

        def finish_pool(pool_events: list[Event]) -> None:
            if run.done:
                return
            run.done = True
            self.events.extend(pool_events)
            self.outstanding_pools -= 1
            if self.outstanding_pools == 0:
                self.completed_at = sim.now

        def subtree_nodes(node: int) -> list[int]:
            reached = [node]
            stack = [node]
            while stack:
                for child in run.children.get(stack.pop(), ()):
                    reached.append(child)
                    stack.append(child)
            return reached

        def fail_branch(node: int) -> None:
            # A relay/holder died with the query in flight: its whole
            # subtree's answers are lost, but the rest of the tree (and
            # the other pools) still resolve — graceful degradation, not
            # a DeliveryError.
            if node in run.failed:
                return
            branch = subtree_nodes(node)
            run.failed.update(branch)
            self.unreachable.update(branch)
            parent = parents.get(node)
            if parent is None:
                finish_pool([])
            else:
                child_done(parent)

        def child_done(parent: int) -> None:
            run.pending[parent] -= 1
            if run.pending[parent] == 0 and parent not in run.failed:
                reply_up(parent)

        def deliver_to_splitter(index: int) -> None:
            if index < len(sink_path) - 1:
                receiver = sink_path[index + 1]
                sim.stats.record(
                    MessageCategory.QUERY_FORWARD,
                    sender=sink_path[index],
                    receiver=receiver,
                )

                def forward_arrive() -> None:
                    # Liveness decided when the hop lands: a dead relay
                    # on the sink->splitter leg silences the whole pool.
                    if not sim.nodes[receiver].alive:
                        self.unreachable.update(tree.nodes())
                        finish_pool([])
                        return
                    deliver_to_splitter(index + 1)

                sim.schedule(sim.hop_latency, forward_arrive)
            else:
                disseminate(splitter)

        def disseminate(node: int) -> None:
            if not sim.nodes[node].alive:
                fail_branch(node)
                return
            kids = run.children.get(node, ())
            if not kids and run.pending[node] == 0:
                reply_up(node)
                return
            for child in kids:
                sim.stats.record(
                    MessageCategory.QUERY_FORWARD, sender=node, receiver=child
                )
                sim.schedule(sim.hop_latency, lambda c=child: disseminate(c))

        def reply_up(node: int) -> None:
            if node in run.failed:
                return
            if not sim.nodes[node].alive:
                fail_branch(node)
                return
            parent = parents.get(node)
            if parent is None:
                pool_done(run.partials[node])
                return
            sim.stats.record(
                MessageCategory.QUERY_REPLY, sender=node, receiver=parent
            )

            def arrive() -> None:
                if not sim.nodes[parent].alive:
                    fail_branch(parent)
                    return
                run.partials[parent].extend(run.partials[node])
                child_done(parent)

            sim.schedule(sim.hop_latency, arrive)

        def pool_done(pool_events: list[Event]) -> None:
            # Splitter -> sink relay of the aggregated pool answer.
            def relay(index: int) -> None:
                if index > 0:
                    receiver = sink_path[index - 1]
                    sim.stats.record(
                        MessageCategory.QUERY_REPLY,
                        sender=sink_path[index],
                        receiver=receiver,
                    )

                    def reply_arrive() -> None:
                        if not sim.nodes[receiver].alive:
                            # The pool's combined answer died on the way
                            # home; every contributor goes unanswered.
                            self.unreachable.update(tree.nodes())
                            finish_pool([])
                            return
                        relay(index - 1)

                    sim.schedule(sim.hop_latency, reply_arrive)
                else:
                    finish_pool(pool_events)
            relay(len(sink_path) - 1)

        if len(sink_path) < 2:
            disseminate(splitter)
        else:
            deliver_to_splitter(0)


def run_query_on_simulator(
    system: PoolSystem,
    simulator: Simulator,
    sink: int,
    query: RangeQuery,
    *,
    recorder: "SpanRecorder | None" = None,
) -> DistributedQueryRun:
    """Execute ``query`` as asynchronous message passing; returns the run.

    The simulator must share the topology the system was built on.  The
    run's costs come out of ``simulator.stats`` (reset here so the counts
    are exactly this query's).  With ``recorder`` given, the whole run is
    wrapped in a ``distributed-query`` span with one nested
    ``pool-dissemination`` span per Pool launched.
    """
    if query.dimensions != system.dimensions:
        raise DimensionMismatchError(system.dimensions, query.dimensions, "query")
    if simulator.topology is not system.network.topology:
        raise QueryError(
            "simulator and PoolSystem must share the same topology object"
        )
    simulator.stats.reset()
    execution = _Execution(system, simulator, sink, query, recorder)
    if recorder is None:
        execution.start()
        simulator.run()
    else:
        with recorder.span(
            "distributed-query", phase="simulate", sink=sink
        ) as root:
            execution.start()
            simulator.run()
            root.add_messages(
                simulator.stats.count(MessageCategory.QUERY_FORWARD)
                + simulator.stats.count(MessageCategory.QUERY_REPLY)
            )
            root.attrs["pools_visited"] = execution.pools_visited
    if execution.outstanding_pools:
        raise QueryError(
            f"{execution.outstanding_pools} pool(s) never replied; "
            "the event queue drained early"
        )
    return DistributedQueryRun(
        events=execution.events,
        forward_cost=simulator.stats.count(MessageCategory.QUERY_FORWARD),
        reply_cost=simulator.stats.count(MessageCategory.QUERY_REPLY),
        completed_at=execution.completed_at,
        pools_visited=execution.pools_visited,
        unreachable_nodes=tuple(sorted(execution.unreachable)),
    )
