"""Replication policy and failure-recovery records for Pool.

The paper assumes reliable index nodes; a deployable system cannot.  This
module adds the standard DCS hardening (GHT's "home node + perimeter
replicas" idea, adapted to Pool's cell structure):

* **Synchronous replication** — every event stored in a cell is also
  copied to the cell's ``r`` *replica nodes* (the alive nodes nearest the
  cell center after the holders).  Each copy is a GPSR unicast charged
  under ``REPLICATE``, so the durability/energy trade-off is measurable.
* **Failure handling** — when nodes die,
  :meth:`repro.core.system.PoolSystem.handle_failures` re-elects index
  nodes (the next-closest alive node — the same rule that elected the
  original), reassigns orphaned segments, restores their events from an
  alive replica when one exists, and reports exactly what was recovered
  and what was lost.

With ``replicas=0`` (the default and the paper's model) failures lose the
dead nodes' events but the system keeps answering from the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError

__all__ = ["ReplicationPolicy", "FailureReport"]


@dataclass(frozen=True, slots=True)
class ReplicationPolicy:
    """Durability tunables.

    Attributes
    ----------
    replicas:
        Copies kept per cell besides the holders (0 disables replication).
    batch_size:
        Events per recovery-transfer message (recovery moves data in
        batches, one radio message per hop per batch).
    """

    replicas: int = 0
    batch_size: int = 4

    def __post_init__(self) -> None:
        if self.replicas < 0:
            raise ConfigurationError(f"replicas must be >= 0, got {self.replicas}")
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )

    @property
    def enabled(self) -> bool:
        return self.replicas > 0

    def transfer_messages(self, moved: int, hops: int) -> int:
        """Radio messages to move ``moved`` events over ``hops`` hops."""
        if moved <= 0 or hops <= 0:
            return 0
        batches = -(-moved // self.batch_size)
        return batches * hops


@dataclass(slots=True)
class FailureReport:
    """What :meth:`PoolSystem.handle_failures` did, for assertions/ops."""

    failed_nodes: frozenset[int]
    segments_reassigned: int = 0
    events_recovered: int = 0
    events_lost: int = 0
    replicas_reseeded: int = 0
    recovery_messages: int = 0
    #: (pool, ho, vo) triples whose data could not be restored.
    lossy_cells: list[tuple[int, int, int]] = field(default_factory=list)

    @property
    def fully_recovered(self) -> bool:
        """Whether no stored event was lost."""
        return self.events_lost == 0
