"""The Pool scheme — the paper's primary contribution.

* :mod:`repro.core.grid` — the α-sized grid-cell view of the field.
* :mod:`repro.core.ranges` — Equation 1: each cell's horizontal/vertical
  value ranges, and the inverse (value → cell offset) used by Theorem 3.1.
* :mod:`repro.core.pool` — Pool layouts (pivot cell + side length) and
  pivot placement.
* :mod:`repro.core.insertion` — Algorithm 1 / Theorem 3.1 event placement,
  including the multiple-greatest-values rule of Section 4.1.
* :mod:`repro.core.resolve` — Theorem 3.2 / Algorithm 2 query resolving.
* :mod:`repro.core.sharing` — the workload-sharing mechanism (Section 4.2).
* :mod:`repro.core.system` — :class:`PoolSystem`, the runnable store.
"""

from repro.core.grid import Cell, Grid
from repro.core.pool import PoolLayout, choose_pivots
from repro.core.insertion import Placement, candidate_placements, placement_for
from repro.core.ranges import (
    cell_value_ranges,
    horizontal_range,
    ho_for_value,
    vertical_range,
    vo_for_value,
)
from repro.core.resolve import (
    PoolQueryRanges,
    query_ranges_for_pool,
    relevant_cells,
    relevant_offsets,
)
from repro.core.replication import FailureReport, ReplicationPolicy
from repro.core.sharing import SharingPolicy
from repro.core.system import PoolSystem
from repro.core.continuous import ContinuousQueryService, Subscription
from repro.core.knn import KnnResult, nearest_neighbors
from repro.core.protocol import DistributedQueryRun, run_query_on_simulator

__all__ = [
    "Cell",
    "Grid",
    "PoolLayout",
    "choose_pivots",
    "Placement",
    "placement_for",
    "candidate_placements",
    "horizontal_range",
    "vertical_range",
    "ho_for_value",
    "vo_for_value",
    "cell_value_ranges",
    "PoolQueryRanges",
    "query_ranges_for_pool",
    "relevant_offsets",
    "relevant_cells",
    "SharingPolicy",
    "ReplicationPolicy",
    "FailureReport",
    "PoolSystem",
    "ContinuousQueryService",
    "Subscription",
    "nearest_neighbors",
    "KnnResult",
    "run_query_on_simulator",
    "DistributedQueryRun",
]
