"""The grid-cell view of the deployment field (Section 2).

Pool visualizes the field as equal α×α meter cells addressed by logical
coordinates ``C_(x,y)`` with ``C_(0,0)`` (the *origin*) at the lower-left.
A sensor derives its native cell from its own position, the cell size α
and the origin coordinates — no communication needed (Section 2):

    x = floor((a - x_orig) / α),  y = floor((b - y_orig) / α)
"""

from __future__ import annotations

import math
from typing import Iterator, NamedTuple

from repro.exceptions import ConfigurationError
from repro.geometry import Point, Rect

__all__ = ["Cell", "Grid"]


class Cell(NamedTuple):
    """Logical grid coordinates ``C_(x,y)``: column ``x``, row ``y``."""

    x: int
    y: int

    def offset(self, dx: int, dy: int) -> "Cell":
        """The cell ``dx`` columns right and ``dy`` rows up from this one."""
        return Cell(self.x + dx, self.y + dy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"C({self.x},{self.y})"


class Grid:
    """An α-sized cell grid over a rectangular field.

    Parameters
    ----------
    field:
        Deployment rectangle; its lower-left corner is the grid origin
        ``(x_orig, y_orig)``.
    cell_size:
        The paper's α, in meters.
    """

    def __init__(self, field: Rect, cell_size: float) -> None:
        if cell_size <= 0:
            raise ConfigurationError(f"cell_size must be positive, got {cell_size}")
        if field.width <= 0 or field.height <= 0:
            raise ConfigurationError(
                f"field must have positive extent, got {field.width}x{field.height}"
            )
        self.field = field
        self.cell_size = float(cell_size)
        self.origin = Point(field.x_min, field.y_min)
        self.columns = max(1, math.ceil(field.width / cell_size))
        self.rows = max(1, math.ceil(field.height / cell_size))

    # ------------------------------------------------------------------ #
    # Coordinate transforms                                              #
    # ------------------------------------------------------------------ #

    def cell_of(self, point: tuple[float, float]) -> Cell:
        """Native cell of a physical location (clamped to the grid)."""
        x = int((point[0] - self.origin.x) // self.cell_size)
        y = int((point[1] - self.origin.y) // self.cell_size)
        return Cell(
            min(max(x, 0), self.columns - 1),
            min(max(y, 0), self.rows - 1),
        )

    def center(self, cell: Cell) -> Point:
        """Physical center of a cell — where its index node should sit."""
        return Point(
            self.origin.x + (cell.x + 0.5) * self.cell_size,
            self.origin.y + (cell.y + 0.5) * self.cell_size,
        )

    def rect(self, cell: Cell) -> Rect:
        """Physical extent of a cell."""
        x0 = self.origin.x + cell.x * self.cell_size
        y0 = self.origin.y + cell.y * self.cell_size
        return Rect(x0, y0, x0 + self.cell_size, y0 + self.cell_size)

    def contains(self, cell: Cell) -> bool:
        """Whether logical coordinates fall inside the grid."""
        return 0 <= cell.x < self.columns and 0 <= cell.y < self.rows

    def cells(self) -> Iterator[Cell]:
        """Row-major iteration over every cell."""
        for y in range(self.rows):
            for x in range(self.columns):
                yield Cell(x, y)

    @property
    def cell_count(self) -> int:
        """Total number of cells."""
        return self.columns * self.rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Grid({self.columns}x{self.rows} cells of "
            f"{self.cell_size}m, origin={tuple(self.origin)})"
        )
