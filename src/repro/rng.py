"""Deterministic random-number plumbing.

Every stochastic component of the library (deployment, workloads, pivot-cell
placement) takes an explicit seed or ``numpy.random.Generator``.  This module
centralizes the conversion so that:

* experiments are reproducible bit-for-bit from a single integer seed, and
* independent subsystems can derive *independent* streams from one root seed
  (via :func:`derive`), so adding RNG draws to one subsystem never perturbs
  another subsystem's stream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_generator", "derive", "SeedLike"]

SeedLike = int | np.random.Generator | None


def ensure_generator(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    ``None`` yields a fresh OS-seeded generator; an ``int`` yields a
    deterministic generator; an existing generator is passed through
    unchanged (shared state, *not* copied).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive(seed: SeedLike, *key: str | int) -> np.random.Generator:
    """Derive an independent child generator from ``seed`` and a stream key.

    The same ``(seed, key)`` pair always produces the same stream.  Example::

        deploy_rng = derive(42, "deploy")
        events_rng = derive(42, "events", trial)
    """
    if isinstance(seed, np.random.Generator):
        # Child streams of a live generator: spawn via its bit generator's
        # seed sequence when available, else fall back to drawing a seed.
        seed_seq = getattr(seed.bit_generator, "seed_seq", None)
        if seed_seq is not None:
            entropy = list(seed_seq.entropy) if isinstance(
                seed_seq.entropy, (list, tuple)
            ) else [seed_seq.entropy]
        else:  # pragma: no cover - all numpy bit generators expose seed_seq
            entropy = [int(seed.integers(0, 2**63))]
    elif seed is None:
        return np.random.default_rng()
    else:
        entropy = [int(seed)]
    key_ints = [
        part if isinstance(part, int) else _string_to_int(part) for part in key
    ]
    return np.random.default_rng(np.random.SeedSequence(entropy + key_ints))


def _string_to_int(text: str) -> int:
    """Stable 63-bit hash of a stream-key string (not Python's salted hash)."""
    value = 1469598103934665603  # FNV-1a offset basis
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) % (1 << 63)
    return value
