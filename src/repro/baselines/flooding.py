"""Local storage with query flooding.

The zero-infrastructure baseline: a sensor stores its own readings, so
insertion is free, and a query must reach *every* node because any node
might hold a match.  Flooding cost model: each node rebroadcasts the
query once (the standard controlled-flood), i.e. ``n`` transmissions;
every node holding at least one qualifying event unicasts its matches
back to the sink over GPSR.

This is exactly the regime the DCS line of work (GHT §1, DIM §1, Pool §1)
argues against for large networks: query cost scales linearly with ``n``
regardless of selectivity.
"""

from __future__ import annotations

from repro.dcs import InsertReceipt, QueryResult, resolve_result
from repro.events.event import Event
from repro.events.queries import RangeQuery
from repro.exceptions import DimensionMismatchError, UnreachableError
from repro.network.messages import MessageCategory
from repro.network.network import Network

__all__ = ["LocalStorageFlooding"]


class LocalStorageFlooding:
    """Store-locally / flood-queries baseline over a :class:`Network`."""

    def __init__(self, network: Network, dimensions: int) -> None:
        self.network = network.scope("flooding")
        self.dimensions = dimensions
        self._storage: dict[int, list[Event]] = {}
        self._event_count = 0

    # ------------------------------------------------------------------ #
    # DataCentricStore protocol                                          #
    # ------------------------------------------------------------------ #

    def insert(self, event: Event, source: int | None = None) -> InsertReceipt:
        """Keep the event at its detecting node — zero messages."""
        if event.dimensions != self.dimensions:
            raise DimensionMismatchError(self.dimensions, event.dimensions)
        src = source if source is not None else event.source
        if src is None:
            src = 0
        self._storage.setdefault(src, []).append(event)
        self._event_count += 1
        return InsertReceipt(home_node=src, hops=0, detail="local")

    def query(self, sink: int, query: RangeQuery) -> QueryResult:
        """Flood the query, collect matches from every holding node."""
        if query.dimensions != self.dimensions:
            raise DimensionMismatchError(self.dimensions, query.dimensions, "query")
        tel = self.network.telemetry
        if tel is None:
            return self._query_impl(sink, query)
        with tel.span("query", phase="query", sink=sink) as span:
            result = self._query_impl(sink, query)
            span.add_messages(result.total_cost)
            span.add_nodes(result.visited_nodes)
            span.attrs["matches"] = result.match_count
            return result

    def _query_impl(self, sink: int, query: RangeQuery) -> QueryResult:
        # Controlled flood: one broadcast per node reaches everyone.  A
        # broadcast is not acknowledged hop-by-hop, so the flood itself
        # is unaffected by unicast loss; only the GPSR reply legs are.
        forward_cost = self.network.size
        self.network.stats.record(MessageCategory.QUERY_FORWARD, forward_cost)
        events: list[Event] = []
        reply_cost = 0
        responders: list[int] = []
        lost_responders: list[int] = []
        for node, stored in self._storage.items():
            matches = [event for event in stored if query.matches(event)]
            if not matches:
                continue
            responders.append(node)
            if node != sink:
                try:
                    path = self.network.unicast(
                        MessageCategory.QUERY_REPLY, node, sink
                    )
                except UnreachableError as err:
                    # This responder's matches never reached the sink.
                    reply_cost += max(len(err.partial_path) - 1, 0)
                    lost_responders.append(node)
                    continue
                reply_cost += len(path) - 1
            events.extend(matches)
        return resolve_result(
            events=events,
            forward_cost=forward_cost,
            reply_cost=reply_cost,
            visited_nodes=tuple(sorted(responders)),
            detail="flood",
            attempted_cells=len(responders),
            answered_cells=len(responders) - len(lost_responders),
            unreachable_cells=tuple(sorted(lost_responders)),
            unreachable_nodes=tuple(sorted(lost_responders)),
        )

    @property
    def stored_events(self) -> int:
        """Total events currently stored."""
        return self._event_count

    def storage_distribution(self) -> dict[int, int]:
        """Events per node — trivially the detection distribution."""
        return {
            node: len(events)
            for node, events in self._storage.items()
            if events
        }
