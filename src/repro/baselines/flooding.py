"""Local storage with query flooding.

The zero-infrastructure baseline: a sensor stores its own readings, so
insertion is free, and a query must reach *every* node because any node
might hold a match.  Flooding cost model: each node rebroadcasts the
query once (the standard controlled-flood), i.e. ``n`` transmissions;
every node holding at least one qualifying event unicasts its matches
back to the sink over GPSR.

This is exactly the regime the DCS line of work (GHT §1, DIM §1, Pool §1)
argues against for large networks: query cost scales linearly with ``n``
regardless of selectivity.
"""

from __future__ import annotations

from typing import Callable

from repro.dcs import InsertReceipt, QueryResult, resolve_result
from repro.events.event import Event
from repro.events.queries import RangeQuery
from repro.exceptions import DimensionMismatchError
from repro.exceptions import UnreachableError
from repro.exec import ALL_CELLS, Execution, QueryPlan, run_staged
from repro.network.messages import MessageCategory
from repro.network.network import Network

__all__ = ["LocalStorageFlooding"]


class LocalStorageFlooding:
    """Store-locally / flood-queries baseline over a :class:`Network`."""

    def __init__(self, network: Network, dimensions: int) -> None:
        self.network = network.scope("flooding")
        self.dimensions = dimensions
        self._storage: dict[int, list[Event]] = {}
        self._event_count = 0
        # Called after every stored event with (ALL_CELLS, event, node):
        # with no index, any node may answer any query, so every insert
        # invalidates every cached plan.
        self.insert_listeners: list[Callable[[str, Event, int], None]] = []

    # ------------------------------------------------------------------ #
    # DataCentricStore protocol                                          #
    # ------------------------------------------------------------------ #

    def insert(self, event: Event, source: int | None = None) -> InsertReceipt:
        """Keep the event at its detecting node — zero messages."""
        if event.dimensions != self.dimensions:
            raise DimensionMismatchError(self.dimensions, event.dimensions)
        src = source if source is not None else event.source
        if src is None:
            src = 0
        self._storage.setdefault(src, []).append(event)
        self._event_count += 1
        for listener in self.insert_listeners:
            listener(ALL_CELLS, event, src)
        return InsertReceipt(home_node=src, hops=0, detail="local")

    def query(self, sink: int, query: RangeQuery) -> QueryResult:
        """Flood the query, collect matches from every holding node.

        Thin compatibility wrapper over the staged pipeline
        (:meth:`plan_query` / :meth:`execute_plan` / :meth:`fold_replies`).
        """
        return run_staged(self, sink, query)

    def plan_query(self, sink: int, query: RangeQuery) -> QueryPlan:
        """Flooding has no index: the "plan" is the whole network.

        The share key includes the query itself — the reply legs depend
        on which nodes hold matches, so only literal repeats of the same
        query produce interchangeable executions.
        """
        return QueryPlan(
            system="flooding",
            sink=sink,
            query=query,
            cells=(ALL_CELLS,),
            destinations=(),
            share_key=("flooding", sink, query),
        )

    def execute_plan(self, plan: QueryPlan) -> Execution:
        """Flood, then pay one GPSR reply leg per responding node.

        The responder scan happens here (not at planning) because the
        reply messages are data-dependent: which nodes unicast back is
        decided by their stored matches at execution time.
        """
        query: RangeQuery = plan.query
        sink = plan.sink
        # Controlled flood: one broadcast per node reaches everyone.  A
        # broadcast is not acknowledged hop-by-hop, so the flood itself
        # is unaffected by unicast loss; only the GPSR reply legs are.
        forward_cost = self.network.size
        self.network.stats.record(MessageCategory.QUERY_FORWARD, forward_cost)
        events: list[Event] = []
        reply_cost = 0
        responders: list[int] = []
        lost_responders: list[int] = []
        for node, stored in self._storage.items():
            matches = [event for event in stored if query.matches(event)]
            if not matches:
                continue
            responders.append(node)
            if node != sink:
                try:
                    path = self.network.unicast(
                        MessageCategory.QUERY_REPLY, node, sink
                    )
                except UnreachableError as err:
                    # This responder's matches never reached the sink.
                    reply_cost += max(len(err.partial_path) - 1, 0)
                    lost_responders.append(node)
                    continue
                reply_cost += len(path) - 1
            events.extend(matches)
        return Execution(
            forward_cost=forward_cost,
            reply_cost=reply_cost,
            answered=frozenset(responders) - frozenset(lost_responders),
            detail=(tuple(events), tuple(responders), tuple(lost_responders)),
        )

    def fold_replies(self, plan: QueryPlan, execution: Execution) -> QueryResult:
        """Assemble the result from the execution's responder scan."""
        events, responders, lost_responders = execution.detail
        return resolve_result(
            events=list(events),
            forward_cost=execution.forward_cost,
            reply_cost=execution.reply_cost,
            visited_nodes=tuple(sorted(responders)),
            detail="flood",
            attempted_cells=len(responders),
            answered_cells=len(responders) - len(lost_responders),
            unreachable_cells=tuple(sorted(lost_responders)),
            unreachable_nodes=tuple(sorted(lost_responders)),
        )

    def query_span_attrs(self, result: QueryResult) -> dict[str, object]:
        """Flooding attributes for the query lifecycle span."""
        return {"matches": result.match_count}

    def close(self) -> None:
        """Detach external hooks so the deployment can be reused."""
        self.insert_listeners.clear()

    @property
    def stored_events(self) -> int:
        """Total events currently stored."""
        return self._event_count

    def storage_distribution(self) -> dict[int, int]:
        """Events per node — trivially the detection distribution."""
        return {
            node: len(events)
            for node, events in self._storage.items()
            if events
        }
