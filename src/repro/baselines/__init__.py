"""Canonical non-DCS storage baselines from the sensornet literature.

The DCS papers (GHT, DIM, Pool) all position themselves against the two
classical extremes, so we ship both for examples and ablations:

* :class:`LocalStorageFlooding` — events stay at the detecting sensor;
  queries flood the network and matches route back ("local storage").
* :class:`ExternalStorage` — every event is shipped to the sink as it is
  detected; queries are answered locally at the sink ("warehouse").

Both implement the :class:`~repro.dcs.DataCentricStore` protocol.
"""

from repro.baselines.external import ExternalStorage
from repro.baselines.flooding import LocalStorageFlooding

__all__ = ["LocalStorageFlooding", "ExternalStorage"]
