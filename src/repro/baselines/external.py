"""External storage: ship everything to the sink.

The other classical extreme: every detected event is immediately routed
to a well-known sink node (the "warehouse"), so queries cost nothing but
insertion pays a full cross-network unicast per event — prohibitive when
events are plentiful and queries rare, which is the trade-off analysis in
the GHT paper that DCS systems are built on.
"""

from __future__ import annotations

from repro.dcs import InsertReceipt, QueryResult, resolve_result
from repro.events.event import Event
from repro.events.queries import RangeQuery
from repro.exceptions import DimensionMismatchError, UnreachableError
from repro.network.messages import MessageCategory
from repro.network.network import Network

__all__ = ["ExternalStorage"]


class ExternalStorage:
    """Ship-to-sink baseline over a :class:`Network`.

    Parameters
    ----------
    network:
        Communication substrate.
    dimensions:
        Event dimensionality ``k``.
    sink:
        The warehouse node; defaults to the node nearest the field center
        (where a base station would sit).
    """

    def __init__(
        self, network: Network, dimensions: int, *, sink: int | None = None
    ) -> None:
        self.network = network.scope("external")
        self.dimensions = dimensions
        self.sink = (
            sink
            if sink is not None
            else network.closest_node(network.topology.field.center)
        )
        self._events: list[Event] = []

    # ------------------------------------------------------------------ #
    # DataCentricStore protocol                                          #
    # ------------------------------------------------------------------ #

    def insert(self, event: Event, source: int | None = None) -> InsertReceipt:
        """Route the event from its detector to the warehouse node."""
        if event.dimensions != self.dimensions:
            raise DimensionMismatchError(self.dimensions, event.dimensions)
        src = source if source is not None else event.source
        if src is None:
            src = self.sink
        try:
            path = self.network.unicast(MessageCategory.INSERT, src, self.sink)
        except UnreachableError as err:
            return InsertReceipt(
                home_node=self.sink,
                hops=max(len(err.partial_path) - 1, 0),
                detail="warehouse",
                delivered=False,
            )
        self._events.append(event)
        return InsertReceipt(
            home_node=self.sink, hops=len(path) - 1, detail="warehouse"
        )

    def query(self, sink: int, query: RangeQuery) -> QueryResult:
        """Scan the warehouse; only non-warehouse sinks pay transport."""
        if query.dimensions != self.dimensions:
            raise DimensionMismatchError(self.dimensions, query.dimensions, "query")
        tel = self.network.telemetry
        if tel is None:
            return self._query_impl(sink, query)
        with tel.span("query", phase="query", sink=sink) as span:
            result = self._query_impl(sink, query)
            span.add_messages(result.total_cost)
            span.add_nodes(result.visited_nodes)
            span.attrs["matches"] = result.match_count
            return result

    def _query_impl(self, sink: int, query: RangeQuery) -> QueryResult:
        events = [event for event in self._events if query.matches(event)]
        forward_cost = 0
        reply_cost = 0
        warehouse_answered = True
        if sink != self.sink:
            # The query travels to the warehouse and one aggregated reply
            # comes back.
            try:
                path = self.network.unicast(
                    MessageCategory.QUERY_FORWARD, sink, self.sink
                )
            except UnreachableError as err:
                forward_cost = max(len(err.partial_path) - 1, 0)
                warehouse_answered = False
                path = None
            if path is not None:
                forward_cost = len(path) - 1
                if self.network.reliability is None:
                    self.network.stats.record(
                        MessageCategory.QUERY_REPLY, forward_cost
                    )
                    reply_cost = forward_cost
                else:
                    try:
                        self.network.send_along(
                            MessageCategory.QUERY_REPLY, list(reversed(path))
                        )
                        reply_cost = forward_cost
                    except UnreachableError as err:
                        reply_cost = max(len(err.partial_path) - 1, 0)
                        warehouse_answered = False
        return resolve_result(
            events=events if warehouse_answered else [],
            forward_cost=forward_cost,
            reply_cost=reply_cost,
            visited_nodes=(self.sink,),
            detail="warehouse",
            attempted_cells=1,
            answered_cells=1 if warehouse_answered else 0,
            unreachable_cells=() if warehouse_answered else ("warehouse",),
            unreachable_nodes=() if warehouse_answered else (self.sink,),
        )

    @property
    def stored_events(self) -> int:
        """Total events held at the warehouse."""
        return len(self._events)

    def storage_distribution(self) -> dict[int, int]:
        """Everything piles onto the warehouse node — the point of the
        baseline, and the worst possible hotspot profile."""
        if not self._events:
            return {}
        return {self.sink: len(self._events)}
