"""External storage: ship everything to the sink.

The other classical extreme: every detected event is immediately routed
to a well-known sink node (the "warehouse"), so queries cost nothing but
insertion pays a full cross-network unicast per event — prohibitive when
events are plentiful and queries rare, which is the trade-off analysis in
the GHT paper that DCS systems are built on.
"""

from __future__ import annotations

from typing import Callable

from repro.dcs import InsertReceipt, QueryResult, resolve_result
from repro.events.event import Event
from repro.events.queries import RangeQuery
from repro.exceptions import DimensionMismatchError, UnreachableError
from repro.exec import WAREHOUSE_CELL, Execution, QueryPlan, run_staged
from repro.network.messages import MessageCategory
from repro.network.network import Network

__all__ = ["ExternalStorage"]


class ExternalStorage:
    """Ship-to-sink baseline over a :class:`Network`.

    Parameters
    ----------
    network:
        Communication substrate.
    dimensions:
        Event dimensionality ``k``.
    sink:
        The warehouse node; defaults to the node nearest the field center
        (where a base station would sit).
    """

    def __init__(
        self, network: Network, dimensions: int, *, sink: int | None = None
    ) -> None:
        self.network = network.scope("external")
        self.dimensions = dimensions
        self.sink = (
            sink
            if sink is not None
            else network.closest_node(network.topology.field.center)
        )
        self._events: list[Event] = []
        # Called after every delivered event with
        # (WAREHOUSE_CELL, event, warehouse_node): the warehouse is the
        # single cell, so every insert invalidates every cached plan.
        self.insert_listeners: list[Callable[[str, Event, int], None]] = []

    # ------------------------------------------------------------------ #
    # DataCentricStore protocol                                          #
    # ------------------------------------------------------------------ #

    def insert(self, event: Event, source: int | None = None) -> InsertReceipt:
        """Route the event from its detector to the warehouse node."""
        if event.dimensions != self.dimensions:
            raise DimensionMismatchError(self.dimensions, event.dimensions)
        src = source if source is not None else event.source
        if src is None:
            src = self.sink
        try:
            path = self.network.unicast(MessageCategory.INSERT, src, self.sink)
        except UnreachableError as err:
            return InsertReceipt(
                home_node=self.sink,
                hops=max(len(err.partial_path) - 1, 0),
                detail="warehouse",
                delivered=False,
            )
        self._events.append(event)
        for listener in self.insert_listeners:
            listener(WAREHOUSE_CELL, event, self.sink)
        return InsertReceipt(
            home_node=self.sink, hops=len(path) - 1, detail="warehouse"
        )

    def query(self, sink: int, query: RangeQuery) -> QueryResult:
        """Scan the warehouse; only non-warehouse sinks pay transport.

        Thin compatibility wrapper over the staged pipeline
        (:meth:`plan_query` / :meth:`execute_plan` / :meth:`fold_replies`).
        """
        return run_staged(self, sink, query)

    def plan_query(self, sink: int, query: RangeQuery) -> QueryPlan:
        """Every plan points at the single warehouse cell."""
        return QueryPlan(
            system="external",
            sink=sink,
            query=query,
            cells=(WAREHOUSE_CELL,),
            destinations=(self.sink,),
            share_key=("external", sink, self.sink),
        )

    def execute_plan(self, plan: QueryPlan) -> Execution:
        """Query to the warehouse, one aggregated reply back."""
        sink = plan.sink
        forward_cost = 0
        reply_cost = 0
        warehouse_answered = True
        if sink != self.sink:
            # The query travels to the warehouse and one aggregated reply
            # comes back.
            try:
                path = self.network.unicast(
                    MessageCategory.QUERY_FORWARD, sink, self.sink
                )
            except UnreachableError as err:
                forward_cost = max(len(err.partial_path) - 1, 0)
                warehouse_answered = False
                path = None
            if path is not None:
                forward_cost = len(path) - 1
                if self.network.reliability is None:
                    self.network.stats.record(
                        MessageCategory.QUERY_REPLY, forward_cost
                    )
                    reply_cost = forward_cost
                else:
                    try:
                        self.network.send_along(
                            MessageCategory.QUERY_REPLY, list(reversed(path))
                        )
                        reply_cost = forward_cost
                    except UnreachableError as err:
                        reply_cost = max(len(err.partial_path) - 1, 0)
                        warehouse_answered = False
        return Execution(
            forward_cost=forward_cost,
            reply_cost=reply_cost,
            answered=frozenset((self.sink,)) if warehouse_answered else frozenset(),
        )

    def fold_replies(self, plan: QueryPlan, execution: Execution) -> QueryResult:
        """Scan the warehouse store — only if its reply made it back."""
        query: RangeQuery = plan.query
        warehouse_answered = self.sink in execution.answered
        events = (
            [event for event in self._events if query.matches(event)]
            if warehouse_answered
            else []
        )
        return resolve_result(
            events=events,
            forward_cost=execution.forward_cost,
            reply_cost=execution.reply_cost,
            visited_nodes=(self.sink,),
            detail="warehouse",
            attempted_cells=1,
            answered_cells=1 if warehouse_answered else 0,
            unreachable_cells=() if warehouse_answered else ("warehouse",),
            unreachable_nodes=() if warehouse_answered else (self.sink,),
        )

    def query_span_attrs(self, result: QueryResult) -> dict[str, object]:
        """External-storage attributes for the query lifecycle span."""
        return {"matches": result.match_count}

    def close(self) -> None:
        """Detach external hooks so the deployment can be reused."""
        self.insert_listeners.clear()

    @property
    def stored_events(self) -> int:
        """Total events held at the warehouse."""
        return len(self._events)

    def storage_distribution(self) -> dict[int, int]:
        """Everything piles onto the warehouse node — the point of the
        baseline, and the worst possible hotspot profile."""
        if not self._events:
            return {}
        return {self.sink: len(self._events)}
