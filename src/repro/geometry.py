"""Planar geometry primitives shared by the routing and storage layers.

The module is deliberately dependency-light (pure Python + ``math``) because
these helpers sit on the hot path of GPSR forwarding decisions.  Everything
operates on simple ``(x, y)`` float pairs exposed through the :class:`Point`
named tuple, so callers may also pass plain tuples.

Conventions
-----------
* Coordinates are meters in a Euclidean plane.
* Angles are radians in ``[0, 2*pi)`` measured counterclockwise from +x.
* Rectangles are axis-aligned and half-open on no side: a :class:`Rect`
  contains its boundary (the storage layer applies half-open semantics on
  top where the paper requires them).
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple

__all__ = [
    "Point",
    "Rect",
    "distance",
    "distance_sq",
    "midpoint",
    "angle_of",
    "ccw_angle_from",
    "orientation",
    "segments_properly_intersect",
    "segment_intersection_point",
    "bounding_box",
]

_TWO_PI = 2.0 * math.pi


class Point(NamedTuple):
    """A point (or vector) in the deployment plane, in meters."""

    x: float
    y: float

    def __add__(self, other: object) -> "Point":  # type: ignore[override]
        if not isinstance(other, tuple):
            return NotImplemented
        ox, oy = other
        return Point(self.x + ox, self.y + oy)

    def __sub__(self, other: object) -> "Point":
        if not isinstance(other, tuple):
            return NotImplemented
        ox, oy = other
        return Point(self.x - ox, self.y - oy)

    def scaled(self, factor: float) -> "Point":
        """Return this point scaled about the origin by ``factor``."""
        return Point(self.x * factor, self.y * factor)


class Rect(NamedTuple):
    """An axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def center(self) -> Point:
        return Point(
            (self.x_min + self.x_max) / 2.0,
            (self.y_min + self.y_max) / 2.0,
        )

    @property
    def area(self) -> float:
        return max(0.0, self.width) * max(0.0, self.height)

    def contains(self, point: tuple[float, float]) -> bool:
        """Whether ``point`` lies in the rectangle (boundary inclusive)."""
        px, py = point
        return self.x_min <= px <= self.x_max and self.y_min <= py <= self.y_max

    def intersects(self, other: "Rect") -> bool:
        """Whether the closed rectangles share at least a boundary point."""
        return not (
            self.x_max < other.x_min
            or other.x_max < self.x_min
            or self.y_max < other.y_min
            or other.y_max < self.y_min
        )

    def clamp(self, point: tuple[float, float]) -> Point:
        """Return the point of the rectangle closest to ``point``."""
        px, py = point
        return Point(
            min(max(px, self.x_min), self.x_max),
            min(max(py, self.y_min), self.y_max),
        )

    def split_x(self) -> tuple["Rect", "Rect"]:
        """Split at the vertical midline: (left half, right half)."""
        mid = (self.x_min + self.x_max) / 2.0
        return (
            Rect(self.x_min, self.y_min, mid, self.y_max),
            Rect(mid, self.y_min, self.x_max, self.y_max),
        )

    def split_y(self) -> tuple["Rect", "Rect"]:
        """Split at the horizontal midline: (bottom half, top half)."""
        mid = (self.y_min + self.y_max) / 2.0
        return (
            Rect(self.x_min, self.y_min, self.x_max, mid),
            Rect(self.x_min, mid, self.x_max, self.y_max),
        )


def distance_sq(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Squared Euclidean distance (no sqrt; use for comparisons)."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def distance(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Euclidean distance between two points."""
    return math.sqrt(distance_sq(a, b))


def midpoint(a: tuple[float, float], b: tuple[float, float]) -> Point:
    """Midpoint of segment ``ab``."""
    return Point((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)


def angle_of(origin: tuple[float, float], target: tuple[float, float]) -> float:
    """Angle of the vector ``origin -> target`` in ``[0, 2*pi)``."""
    angle = math.atan2(target[1] - origin[1], target[0] - origin[0])
    if angle < 0.0:
        angle += _TWO_PI
    if angle >= _TWO_PI:  # -epsilon wrapped to exactly 2*pi in float
        angle = 0.0
    return angle


def ccw_angle_from(reference: float, angle: float) -> float:
    """Counterclockwise sweep from ``reference`` to ``angle``, in ``(0, 2*pi]``.

    GPSR's right-hand rule picks the neighbor whose edge is the *first one
    counterclockwise* from the incoming edge; a sweep of exactly ``0`` is
    mapped to ``2*pi`` so the incoming edge itself sorts last.
    """
    sweep = (angle - reference) % _TWO_PI
    # Exact sentinel: % can return exactly 0.0, which must map to 2*pi.
    if sweep == 0.0:  # repro-lint: ignore[REP004]
        sweep = _TWO_PI
    return sweep


def orientation(
    a: tuple[float, float], b: tuple[float, float], c: tuple[float, float]
) -> int:
    """Orientation of the triple ``(a, b, c)``.

    Returns ``1`` for counterclockwise, ``-1`` for clockwise and ``0`` for
    collinear points.
    """
    cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    if cross > 0.0:
        return 1
    if cross < 0.0:
        return -1
    return 0


def _on_segment(
    a: tuple[float, float], b: tuple[float, float], p: tuple[float, float]
) -> bool:
    """Whether collinear point ``p`` lies on the closed segment ``ab``."""
    return (
        min(a[0], b[0]) <= p[0] <= max(a[0], b[0])
        and min(a[1], b[1]) <= p[1] <= max(a[1], b[1])
    )


def segments_properly_intersect(
    p1: tuple[float, float],
    p2: tuple[float, float],
    q1: tuple[float, float],
    q2: tuple[float, float],
) -> bool:
    """Whether segments ``p1p2`` and ``q1q2`` cross at an interior point.

    Shared endpoints do **not** count as an intersection; GPSR's face-change
    test needs proper crossings only (a perimeter edge that merely touches
    the ``Lp -> destination`` line must not trigger a face change).
    """
    o1 = orientation(p1, p2, q1)
    o2 = orientation(p1, p2, q2)
    o3 = orientation(q1, q2, p1)
    o4 = orientation(q1, q2, p2)
    return o1 != o2 and o3 != o4 and 0 not in (o1, o2, o3, o4)


def segment_intersection_point(
    p1: tuple[float, float],
    p2: tuple[float, float],
    q1: tuple[float, float],
    q2: tuple[float, float],
) -> Point | None:
    """Intersection point of segments ``p1p2`` and ``q1q2``, or ``None``.

    Unlike :func:`segments_properly_intersect` this also reports touching
    intersections when the lines are not parallel; collinear overlaps return
    ``None`` (GPSR treats those as no crossing).
    """
    r_x, r_y = p2[0] - p1[0], p2[1] - p1[1]
    s_x, s_y = q2[0] - q1[0], q2[1] - q1[1]
    denom = r_x * s_y - r_y * s_x
    # Exact zero guard against the division below, not a tolerance test.
    if denom == 0.0:  # repro-lint: ignore[REP004]
        return None
    qp_x, qp_y = q1[0] - p1[0], q1[1] - p1[1]
    t = (qp_x * s_y - qp_y * s_x) / denom
    u = (qp_x * r_y - qp_y * r_x) / denom
    if 0.0 <= t <= 1.0 and 0.0 <= u <= 1.0:
        return Point(p1[0] + t * r_x, p1[1] + t * r_y)
    return None


def bounding_box(points: Iterable[tuple[float, float]]) -> Rect:
    """Tight axis-aligned bounding box of a non-empty point collection."""
    iterator = iter(points)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("bounding_box() requires at least one point") from None
    x_min = x_max = first[0]
    y_min = y_max = first[1]
    for px, py in iterator:
        x_min = min(x_min, px)
        x_max = max(x_max, px)
        y_min = min(y_min, py)
        y_max = max(y_max, py)
    return Rect(x_min, y_min, x_max, y_max)
