"""Online serving layer over the staged query pipeline.

Deterministic scheduled workloads (:mod:`repro.serve.schedule`), a
simulated clock (:mod:`repro.serve.clock`), a plan/result cache with
cell-set invalidation (:mod:`repro.serve.cache`), the request-queue
service with batch coalescing (:mod:`repro.serve.service`) and the
throughput/latency/SLO reporting (:mod:`repro.serve.report`).

Surfaced on the CLI as ``pool-bench serve``.
"""

from repro.serve.cache import CacheEntry, PlanResultCache
from repro.serve.clock import SimClock
from repro.serve.report import ServedQuery, ServeReport, render_serve_table
from repro.serve.schedule import (
    ARRIVAL_PATTERNS,
    ServeRequest,
    ServeSchedule,
    build_schedule,
)
from repro.serve.service import QueryService

__all__ = [
    "ARRIVAL_PATTERNS",
    "CacheEntry",
    "PlanResultCache",
    "QueryService",
    "ServeRequest",
    "ServeSchedule",
    "ServeReport",
    "ServedQuery",
    "SimClock",
    "build_schedule",
    "render_serve_table",
]
