"""Online serving layer over the staged query pipeline.

Deterministic scheduled workloads (:mod:`repro.serve.schedule`), a
simulated clock (:mod:`repro.serve.clock`), a plan/result cache with
cell-set invalidation (:mod:`repro.serve.cache`), the request-queue
service with batch coalescing (:mod:`repro.serve.service`), the
throughput/latency/SLO reporting (:mod:`repro.serve.report`), the
overload/fault-tolerance policies — bounded admission, shedding,
deadlines, retries, circuit breaking (:mod:`repro.serve.admission`) —
and the deterministic chaos-scenario generator
(:mod:`repro.serve.chaos`).

Surfaced on the CLI as ``pool-bench serve``.
"""

from repro.serve.admission import (
    SHED_POLICIES,
    AdmissionPolicy,
    AdmissionQueue,
    BreakerPolicy,
    CircuitBreaker,
    RetryPolicy,
)
from repro.serve.cache import CacheEntry, PlanResultCache
from repro.serve.chaos import ChaosSpec, generate_fault_plan
from repro.serve.clock import SimClock
from repro.serve.report import (
    ServedQuery,
    ServeReport,
    render_robustness_table,
    render_serve_table,
)
from repro.serve.schedule import (
    ARRIVAL_PATTERNS,
    ServeRequest,
    ServeSchedule,
    build_schedule,
)
from repro.serve.service import QueryService, merge_partial_results

__all__ = [
    "ARRIVAL_PATTERNS",
    "AdmissionPolicy",
    "AdmissionQueue",
    "BreakerPolicy",
    "CacheEntry",
    "ChaosSpec",
    "CircuitBreaker",
    "PlanResultCache",
    "QueryService",
    "RetryPolicy",
    "SHED_POLICIES",
    "ServeRequest",
    "ServeSchedule",
    "ServeReport",
    "ServedQuery",
    "SimClock",
    "build_schedule",
    "generate_fault_plan",
    "merge_partial_results",
    "render_robustness_table",
    "render_serve_table",
]
