"""Throughput / latency / SLO reporting for the serving layer.

Every number here is derived from *simulated* time and the deterministic
message ledger, so a serve report is byte-identical across runs — it can
be diffed in CI like any other capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ServedQuery", "ServeReport", "render_serve_table"]

#: How a request was satisfied.
OUTCOME_EXECUTED = "executed"
OUTCOME_CACHE = "cache"
OUTCOME_COALESCED = "coalesced"


@dataclass(slots=True)
class ServedQuery:
    """Accounting for one served request."""

    request_id: int
    sink: int
    submitted_at: float
    served_at: float
    outcome: str  # executed | cache | coalesced
    messages: int  # ledger messages charged on behalf of this request
    saved_messages: int  # messages an uncached/uncoalesced run would charge
    depth_hops: int
    matches: int
    latency_s: float  # queue wait + simulated radio round trip

    def as_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "sink": self.sink,
            "submitted_at": round(self.submitted_at, 6),
            "served_at": round(self.served_at, 6),
            "outcome": self.outcome,
            "messages": self.messages,
            "saved_messages": self.saved_messages,
            "depth_hops": self.depth_hops,
            "matches": self.matches,
            "latency_s": round(self.latency_s, 6),
        }


def _percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(p * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass(slots=True)
class ServeReport:
    """One service run's aggregate accounting."""

    system: str
    duration: float  # simulated seconds the schedule spanned
    slo_target_s: float
    served: list[ServedQuery] = field(default_factory=list)
    messages_total: int = 0  # everything the ledger charged during serving

    # -- derived ------------------------------------------------------- #

    @property
    def requests(self) -> int:
        return len(self.served)

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.served if s.outcome == OUTCOME_CACHE)

    @property
    def coalesced(self) -> int:
        return sum(1 for s in self.served if s.outcome == OUTCOME_COALESCED)

    @property
    def executed(self) -> int:
        return sum(1 for s in self.served if s.outcome == OUTCOME_EXECUTED)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def saved_messages(self) -> int:
        return sum(s.saved_messages for s in self.served)

    @property
    def throughput(self) -> float:
        """Requests per simulated second."""
        return self.requests / self.duration if self.duration > 0 else 0.0

    def latency_percentile(self, p: float) -> float:
        return _percentile(sorted(s.latency_s for s in self.served), p)

    @property
    def slo_attainment(self) -> float:
        """Fraction of requests served within the SLO latency target."""
        if not self.served:
            return 1.0
        within = sum(1 for s in self.served if s.latency_s <= self.slo_target_s)
        return within / len(self.served)

    def as_dict(self, *, include_requests: bool = True) -> dict[str, Any]:
        """JSON-ready view (deterministic; the CI artifact format)."""
        payload: dict[str, Any] = {
            "schema": "serve-report/1",
            "system": self.system,
            "duration_s": round(self.duration, 6),
            "requests": self.requests,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "hit_rate": round(self.hit_rate, 6),
            "messages_total": self.messages_total,
            "saved_messages": self.saved_messages,
            "throughput_rps": round(self.throughput, 6),
            "latency_p50_s": round(self.latency_percentile(0.50), 6),
            "latency_p95_s": round(self.latency_percentile(0.95), 6),
            "latency_p99_s": round(self.latency_percentile(0.99), 6),
            "slo_target_s": round(self.slo_target_s, 6),
            "slo_attainment": round(self.slo_attainment, 6),
        }
        if include_requests:
            payload["served"] = [s.as_dict() for s in self.served]
        return payload


def render_serve_table(
    rows: list[tuple[ServeReport, ServeReport]],
) -> str:
    """Human-readable serve summary.

    ``rows`` pairs each system's cached run with its uncached control run
    of the same schedule; the messages-saved column is the measured
    difference between the two ledgers, not an estimate.
    """
    header = (
        f"{'system':<10} {'req':>5} {'hits':>5} {'hit%':>6} {'coal':>5} "
        f"{'msgs':>8} {'uncached':>9} {'saved':>8} {'p50 ms':>8} "
        f"{'p95 ms':>8} {'slo%':>6}"
    )
    lines = [header, "-" * len(header)]
    for report, control in rows:
        saved = control.messages_total - report.messages_total
        lines.append(
            f"{report.system:<10} {report.requests:>5} "
            f"{report.cache_hits:>5} {100 * report.hit_rate:>5.1f}% "
            f"{report.coalesced:>5} {report.messages_total:>8} "
            f"{control.messages_total:>9} {saved:>8} "
            f"{1000 * report.latency_percentile(0.50):>8.2f} "
            f"{1000 * report.latency_percentile(0.95):>8.2f} "
            f"{100 * report.slo_attainment:>5.1f}%"
        )
    return "\n".join(lines)
