"""Throughput / latency / SLO reporting for the serving layer.

Every number here is derived from *simulated* time and the deterministic
message ledger, so a serve report is byte-identical across runs — it can
be diffed in CI like any other capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ServedQuery",
    "ServeReport",
    "render_serve_table",
    "render_robustness_table",
    "COMPLETE_OUTCOMES",
    "TERMINAL_OUTCOMES",
]

#: How a request was satisfied.
OUTCOME_EXECUTED = "executed"
OUTCOME_CACHE = "cache"
OUTCOME_COALESCED = "coalesced"
#: Overload/fault terminal outcomes (the robustness layer).
OUTCOME_PARTIAL = "partial"  # executed, but some cells stayed unreachable
OUTCOME_TIMEOUT = "timeout"  # deadline passed (queued or completed late)
OUTCOME_SHED = "shed"  # dropped by the bounded queue or an open breaker
OUTCOME_REJECTED = "rejected"  # malformed request, never executed
OUTCOME_STALE = "stale"  # complete-but-invalidated cache entry (breaker open)

#: Outcomes that answered the query fully and count toward goodput.
COMPLETE_OUTCOMES = frozenset(
    {OUTCOME_EXECUTED, OUTCOME_CACHE, OUTCOME_COALESCED}
)

#: Every terminal outcome a request can end in (exactly one each).
TERMINAL_OUTCOMES = frozenset(
    {
        OUTCOME_EXECUTED,
        OUTCOME_CACHE,
        OUTCOME_COALESCED,
        OUTCOME_PARTIAL,
        OUTCOME_TIMEOUT,
        OUTCOME_SHED,
        OUTCOME_REJECTED,
        OUTCOME_STALE,
    }
)


@dataclass(slots=True)
class ServedQuery:
    """Accounting for one served request."""

    request_id: int
    sink: int
    submitted_at: float
    served_at: float
    outcome: str  # a TERMINAL_OUTCOMES member
    messages: int  # ledger messages charged on behalf of this request
    saved_messages: int  # messages an uncached/uncoalesced run would charge
    depth_hops: int
    matches: int
    latency_s: float  # queue wait + simulated radio round trip
    #: Fraction of query-relevant cells that answered (< 1.0 only for
    #: partial outcomes under loss/faults).
    completeness: float = 1.0
    #: Partial-result re-executions spent on this request.
    retries: int = 0

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "request_id": self.request_id,
            "sink": self.sink,
            "submitted_at": round(self.submitted_at, 6),
            "served_at": round(self.served_at, 6),
            "outcome": self.outcome,
            "messages": self.messages,
            "saved_messages": self.saved_messages,
            "depth_hops": self.depth_hops,
            "matches": self.matches,
            "latency_s": round(self.latency_s, 6),
        }
        # Robustness fields appear only when they deviate from the
        # lossless defaults, keeping clean-run exports byte-identical to
        # the pre-admission serving layer.
        if self.completeness < 1.0:
            payload["completeness"] = round(self.completeness, 6)
        if self.retries:
            payload["retries"] = self.retries
        return payload


def _percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(p * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass(slots=True)
class ServeReport:
    """One service run's aggregate accounting."""

    system: str
    duration: float  # simulated seconds the schedule spanned
    slo_target_s: float
    served: list[ServedQuery] = field(default_factory=list)
    messages_total: int = 0  # everything the ledger charged during serving
    #: Serialized robustness configuration (admission/retry/breaker) when
    #: any of it is active; ``None`` keeps the legacy report shape.
    policy: dict[str, Any] | None = None
    #: Circuit-breaker trip count (0 when no breaker is configured).
    breaker_trips: int = 0

    # -- derived ------------------------------------------------------- #

    @property
    def requests(self) -> int:
        return len(self.served)

    @property
    def offered(self) -> int:
        """Every request the schedule submitted (each ends in exactly one
        terminal outcome, so this equals ``len(served)``)."""
        return len(self.served)

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.served if s.outcome == OUTCOME_CACHE)

    @property
    def coalesced(self) -> int:
        return sum(1 for s in self.served if s.outcome == OUTCOME_COALESCED)

    @property
    def executed(self) -> int:
        return sum(1 for s in self.served if s.outcome == OUTCOME_EXECUTED)

    @property
    def partials(self) -> int:
        return sum(1 for s in self.served if s.outcome == OUTCOME_PARTIAL)

    @property
    def timeouts(self) -> int:
        return sum(1 for s in self.served if s.outcome == OUTCOME_TIMEOUT)

    @property
    def shed(self) -> int:
        return sum(1 for s in self.served if s.outcome == OUTCOME_SHED)

    @property
    def rejected(self) -> int:
        return sum(1 for s in self.served if s.outcome == OUTCOME_REJECTED)

    @property
    def stale_served(self) -> int:
        return sum(1 for s in self.served if s.outcome == OUTCOME_STALE)

    @property
    def goodput(self) -> float:
        """SLO-met complete answers / offered requests.

        A request contributes only when it was answered *fully* (an
        executed, cached or coalesced outcome with completeness 1.0)
        *within* the SLO latency target.  Shed, timed-out, rejected,
        partial and stale-served requests all count against goodput —
        the honest denominator is everything the workload offered.
        """
        if not self.served:
            return 1.0
        good = sum(
            1
            for s in self.served
            if s.outcome in COMPLETE_OUTCOMES
            and s.completeness >= 1.0
            and s.latency_s <= self.slo_target_s
        )
        return good / len(self.served)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def saved_messages(self) -> int:
        return sum(s.saved_messages for s in self.served)

    @property
    def throughput(self) -> float:
        """Requests per simulated second."""
        return self.requests / self.duration if self.duration > 0 else 0.0

    def latency_percentile(self, p: float) -> float:
        return _percentile(sorted(s.latency_s for s in self.served), p)

    @property
    def slo_attainment(self) -> float:
        """Fraction of requests served within the SLO latency target."""
        if not self.served:
            return 1.0
        within = sum(1 for s in self.served if s.latency_s <= self.slo_target_s)
        return within / len(self.served)

    @property
    def robust(self) -> bool:
        """Whether the robustness block belongs in the export.

        True when any overload/fault policy was configured, or when any
        request ended in a robustness outcome (chaos without admission
        control still reports goodput honestly).  False on a default
        lossless run, whose export must stay byte-identical to the
        pre-admission serving layer.
        """
        if self.policy is not None:
            return True
        return any(s.outcome not in COMPLETE_OUTCOMES for s in self.served)

    def as_dict(self, *, include_requests: bool = True) -> dict[str, Any]:
        """JSON-ready view (deterministic; the CI artifact format)."""
        if self.robust:
            return self._as_dict_robust(include_requests=include_requests)
        payload: dict[str, Any] = {
            "schema": "serve-report/1",
            "system": self.system,
            "duration_s": round(self.duration, 6),
            "requests": self.requests,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "hit_rate": round(self.hit_rate, 6),
            "messages_total": self.messages_total,
            "saved_messages": self.saved_messages,
            "throughput_rps": round(self.throughput, 6),
            "latency_p50_s": round(self.latency_percentile(0.50), 6),
            "latency_p95_s": round(self.latency_percentile(0.95), 6),
            "latency_p99_s": round(self.latency_percentile(0.99), 6),
            "slo_target_s": round(self.slo_target_s, 6),
            "slo_attainment": round(self.slo_attainment, 6),
        }
        if include_requests:
            payload["served"] = [s.as_dict() for s in self.served]
        return payload

    def _as_dict_robust(self, *, include_requests: bool) -> dict[str, Any]:
        """The serve-report/2 shape: everything from v1 plus the
        overload/fault accounting (goodput, terminal-outcome counters,
        the active policy and breaker trips)."""
        payload: dict[str, Any] = {
            "schema": "serve-report/2",
            "system": self.system,
            "duration_s": round(self.duration, 6),
            "requests": self.requests,
            "offered": self.offered,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "partial": self.partials,
            "timeouts": self.timeouts,
            "shed": self.shed,
            "rejected": self.rejected,
            "stale_served": self.stale_served,
            "hit_rate": round(self.hit_rate, 6),
            "goodput": round(self.goodput, 6),
            "breaker_trips": self.breaker_trips,
            "messages_total": self.messages_total,
            "saved_messages": self.saved_messages,
            "throughput_rps": round(self.throughput, 6),
            "latency_p50_s": round(self.latency_percentile(0.50), 6),
            "latency_p95_s": round(self.latency_percentile(0.95), 6),
            "latency_p99_s": round(self.latency_percentile(0.99), 6),
            "slo_target_s": round(self.slo_target_s, 6),
            "slo_attainment": round(self.slo_attainment, 6),
            "policy": self.policy,
        }
        if include_requests:
            payload["served"] = [s.as_dict() for s in self.served]
        return payload


def render_robustness_table(reports: list[ServeReport]) -> str:
    """Overload/fault outcome summary, one row per (robust) report.

    Rendered by the CLI *in addition to* the classic serve table whenever
    a run carried robustness outcomes, so default runs keep their exact
    historical stdout.
    """
    header = (
        f"{'system':<10} {'offered':>7} {'ok':>5} {'part':>5} {'shed':>5} "
        f"{'tmo':>5} {'rej':>5} {'stale':>5} {'trips':>5} {'goodput':>8} "
        f"{'p95 ms':>8}"
    )
    lines = [header, "-" * len(header)]
    for report in reports:
        ok = report.executed + report.cache_hits + report.coalesced
        lines.append(
            f"{report.system:<10} {report.offered:>7} {ok:>5} "
            f"{report.partials:>5} {report.shed:>5} {report.timeouts:>5} "
            f"{report.rejected:>5} {report.stale_served:>5} "
            f"{report.breaker_trips:>5} {100 * report.goodput:>7.1f}% "
            f"{1000 * report.latency_percentile(0.95):>8.2f}"
        )
    return "\n".join(lines)


def render_serve_table(
    rows: list[tuple[ServeReport, ServeReport]],
) -> str:
    """Human-readable serve summary.

    ``rows`` pairs each system's cached run with its uncached control run
    of the same schedule; the messages-saved column is the measured
    difference between the two ledgers, not an estimate.
    """
    header = (
        f"{'system':<10} {'req':>5} {'hits':>5} {'hit%':>6} {'coal':>5} "
        f"{'msgs':>8} {'uncached':>9} {'saved':>8} {'p50 ms':>8} "
        f"{'p95 ms':>8} {'slo%':>6}"
    )
    lines = [header, "-" * len(header)]
    for report, control in rows:
        saved = control.messages_total - report.messages_total
        lines.append(
            f"{report.system:<10} {report.requests:>5} "
            f"{report.cache_hits:>5} {100 * report.hit_rate:>5.1f}% "
            f"{report.coalesced:>5} {report.messages_total:>8} "
            f"{control.messages_total:>9} {saved:>8} "
            f"{1000 * report.latency_percentile(0.50):>8.2f} "
            f"{1000 * report.latency_percentile(0.95):>8.2f} "
            f"{100 * report.slo_attainment:>5.1f}%"
        )
    return "\n".join(lines)
