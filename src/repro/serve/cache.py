"""Plan/result cache for the serving layer.

Entries are looked up by request identity ``(sink, query)`` and indexed
for invalidation by the plan's *resolved cell set* — the Theorem 3.2
output that the staged pipeline made first-class.  The soundness argument
is each system's resolve-covers-placement invariant: an event that could
change a query's answer is always stored in a cell the query's plan
lists (Pool places events only in cells Algorithm 2 resolves for any
matching query; DIM zones partition the value space; a DIFS event's leaf
is always among the query's leaves; flooding and external storage use
conservative whole-system sentinels).  So invalidating exactly the
entries whose cell set contains the insert's cell can never serve a
stale result — and never evicts an unaffected entry.

The cache hooks a system's ``insert_listeners``; detach with
:meth:`PlanResultCache.detach` (or the system's ``close()``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.core.insertion import Placement
from repro.dcs import QueryResult
from repro.events.queries import RangeQuery
from repro.exec import QueryPlan

__all__ = ["CacheEntry", "PlanResultCache"]

CacheKey = tuple[int, Hashable]


def _native_cell(cell: Any) -> Hashable:
    """Normalize a listener's cell to the identity plans list.

    Pool's listeners report :class:`Placement` (the shape the
    continuous-query service consumes); Pool plans list the equivalent
    ``(pool, ho, vo)`` triple.  Every other system already reports its
    plan-native identity.
    """
    if isinstance(cell, Placement):
        return (cell.pool, cell.ho, cell.vo)
    return cell


@dataclass(slots=True)
class CacheEntry:
    """One cached plan with its folded result.

    ``cost`` is what the producing execution charged to the ledger — the
    messages a cache hit avoids re-charging (exact on a deterministic
    network: re-executing the same plan charges the same messages).
    ``complete`` tags whether the result answered every query-relevant
    cell: an incomplete entry (a :class:`~repro.dcs.PartialResult` folded
    under loss or faults) is **never** served as a plain hit — lookups
    skip it so the request revalidates by re-executing, and the fresh
    result then replaces the tainted entry.
    """

    plan: QueryPlan
    result: QueryResult
    cost: int
    complete: bool = True


class PlanResultCache:
    """Resolved-cell-set keyed cache over one system's staged pipeline.

    ``keep_stale`` (off by default) retains *complete* entries evicted by
    invalidation in a stale side table, so a tripped circuit breaker can
    serve a stale-but-complete answer instead of executing into a failing
    network.  Stale entries never satisfy a normal :meth:`lookup`; only
    :meth:`lookup_stale` reads them, and a fresh :meth:`store` for the
    same request supersedes them.
    """

    def __init__(self, *, keep_stale: bool = False) -> None:
        self._entries: dict[CacheKey, CacheEntry] = {}
        # Inverted index: native cell -> keys of entries whose plan
        # resolved that cell.
        self._by_cell: dict[Hashable, set[CacheKey]] = {}
        self._attached: list[tuple[Any, Any]] = []
        self.keep_stale = keep_stale
        self._stale: dict[CacheKey, CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.incomplete_skips = 0
        self.stale_hits = 0

    # ------------------------------------------------------------------ #
    # Lookup / store                                                     #
    # ------------------------------------------------------------------ #

    def lookup(self, sink: int, query: RangeQuery) -> CacheEntry | None:
        """The live *complete* entry for ``(sink, query)``.

        An incomplete entry counts as a miss (and is tallied under
        ``incomplete_skips``): the caller re-executes, which revalidates
        the answer and overwrites the tainted entry.  Serving it as a
        hit would replay a lossy network's partial answer as
        authoritative forever — the cache-poisoning bug this guards
        against.
        """
        entry = self._entries.get((sink, query))
        if entry is not None and not entry.complete:
            self.incomplete_skips += 1
            entry = None
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def lookup_stale(self, sink: int, query: RangeQuery) -> CacheEntry | None:
        """A stale-but-complete entry for ``(sink, query)``, if retained.

        Only consulted while a circuit breaker is open; stale entries are
        by construction complete (incomplete ones are dropped outright at
        invalidation time).
        """
        entry = self._stale.get((sink, query))
        if entry is not None:
            self.stale_hits += 1
        return entry

    def store(self, plan: QueryPlan, result: QueryResult, cost: int) -> None:
        """Cache a freshly folded result under its plan's identities.

        Completeness is taken from the result itself: a
        :class:`~repro.dcs.PartialResult` is stored *tagged incomplete*
        so it can never satisfy a plain lookup (see :meth:`lookup`).
        """
        key: CacheKey = (plan.sink, plan.query)
        existing = self._entries.get(key)
        if existing is not None:
            self._unindex(key, existing.plan)
        complete = not result.is_partial
        self._entries[key] = CacheEntry(
            plan=plan, result=result, cost=cost, complete=complete
        )
        if complete:
            # A fresh complete answer supersedes any stale copy.
            self._stale.pop(key, None)
        for cell in dict.fromkeys(plan.cells):
            self._by_cell.setdefault(cell, set()).add(key)

    # ------------------------------------------------------------------ #
    # Invalidation                                                       #
    # ------------------------------------------------------------------ #

    def invalidate_cell(self, cell: Hashable) -> int:
        """Drop every entry whose resolved cell set contains ``cell``.

        Returns how many entries were invalidated.
        """
        keys = self._by_cell.pop(_native_cell(cell), None)
        if not keys:
            return 0
        dropped = 0
        for key in sorted(keys, key=repr):
            entry = self._entries.pop(key, None)
            if entry is None:
                continue
            self._unindex(key, entry.plan)
            if self.keep_stale and entry.complete:
                self._stale[key] = entry
            dropped += 1
        self.invalidations += dropped
        return dropped

    def invalidate_all(self) -> int:
        """Drop everything (topology changes, failure epochs)."""
        dropped = len(self._entries)
        if self.keep_stale:
            for key in sorted(self._entries, key=repr):
                entry = self._entries[key]
                if entry.complete:
                    self._stale[key] = entry
        self._entries.clear()
        self._by_cell.clear()
        self.invalidations += dropped
        return dropped

    def _unindex(self, key: CacheKey, plan: QueryPlan) -> None:
        for cell in dict.fromkeys(plan.cells):
            anchored = self._by_cell.get(cell)
            if anchored is not None:
                anchored.discard(key)
                if not anchored:
                    del self._by_cell[cell]

    # ------------------------------------------------------------------ #
    # Insert-listener wiring                                             #
    # ------------------------------------------------------------------ #

    def attach(self, system: Any) -> None:
        """Hook the system's insert listeners for automatic invalidation."""

        def _on_insert(cell: Any, event: Any, holder: int) -> None:
            self.invalidate_cell(cell)

        system.insert_listeners.append(_on_insert)
        self._attached.append((system, _on_insert))

    def detach(self) -> None:
        """Unhook every listener registered by :meth:`attach`.  Idempotent."""
        for system, listener in self._attached:
            try:
                system.insert_listeners.remove(listener)
            except ValueError:
                pass  # the system already tore its listener list down
        self._attached.clear()

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 with no lookups)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def cells_indexed(self) -> int:
        """Number of distinct cells in the invalidation index."""
        return len(self._by_cell)

    def stale_entries(self) -> int:
        """Number of stale-but-complete entries retained for the breaker."""
        return len(self._stale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanResultCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"invalidations={self.invalidations})"
        )
