"""Deterministic chaos scenarios for the serving layer.

A *chaos scenario* is a :class:`~repro.network.reliability.FaultPlan`
generated from a seed: node deaths and link-degradation windows placed at
derived-RNG transmission ticks, so the same ``(seed, spec)`` pair always
produces the same mid-run faults — byte-identical serve runs under chaos
are the whole point (the CI smoke job runs every scenario twice and
``cmp``\\ s the artifacts).

Placement draws come from ``derive(seed, "serve-chaos")``, a stream
disjoint from topology, workload and loss streams, so enabling chaos
never perturbs what the run would otherwise do — it only adds faults on
top.  Sink nodes are passed via ``protect`` and are never killed: a dead
sink would fail the *schedule*, not the network, and that is not the
degradation mode the serve bench studies.

``python -m repro.serve.chaos`` writes a generated plan as ``--fault-plan``
JSON so ad-hoc runs and CI can share one scenario file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.network.reliability import FaultPlan, LinkDegradation, NodeDeath
from repro.rng import SeedLike, derive

__all__ = ["ChaosSpec", "generate_fault_plan"]


@dataclass(frozen=True, slots=True)
class ChaosSpec:
    """Shape of a generated chaos scenario.

    Parameters
    ----------
    deaths:
        Number of :class:`NodeDeath` events.  Each kills
        ``nodes_per_death`` distinct nodes (a node dies at most once per
        scenario) at a tick drawn uniformly from ``[1, horizon_ticks)``.
    degradations:
        Number of :class:`LinkDegradation` windows, each ``window_ticks``
        long with ``extra_loss`` added to every link, starting at a
        uniformly drawn tick.
    horizon_ticks:
        Transmission-tick horizon faults are placed within.  Ticks count
        one-hop transmission attempts (the reliability layer's monotone
        clock), so the horizon should roughly match the run's expected
        traffic volume — the serve bench's default covers its default
        schedule with room to spare.
    nodes_per_death:
        Nodes killed per death event.
    extra_loss:
        Additive loss probability inside a degradation window.
    window_ticks:
        Length of each degradation window in ticks.
    """

    deaths: int = 0
    degradations: int = 0
    horizon_ticks: int = 2000
    nodes_per_death: int = 2
    extra_loss: float = 0.35
    window_ticks: int = 300

    def __post_init__(self) -> None:
        if self.deaths < 0 or self.degradations < 0:
            raise ConfigurationError(
                f"deaths/degradations must be >= 0, got "
                f"{self.deaths}/{self.degradations}"
            )
        if self.horizon_ticks < 2:
            raise ConfigurationError(
                f"horizon_ticks must be >= 2, got {self.horizon_ticks}"
            )
        if self.nodes_per_death < 1:
            raise ConfigurationError(
                f"nodes_per_death must be >= 1, got {self.nodes_per_death}"
            )
        if not 0.0 < self.extra_loss <= 1.0:
            raise ConfigurationError(
                f"extra_loss must be in (0, 1], got {self.extra_loss}"
            )
        if not 0 < self.window_ticks <= self.horizon_ticks:
            raise ConfigurationError(
                f"window_ticks must be in (0, horizon], got {self.window_ticks}"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "deaths": self.deaths,
            "degradations": self.degradations,
            "horizon_ticks": self.horizon_ticks,
            "nodes_per_death": self.nodes_per_death,
            "extra_loss": self.extra_loss,
            "window_ticks": self.window_ticks,
        }


def generate_fault_plan(
    spec: ChaosSpec,
    *,
    nodes: Sequence[int],
    seed: SeedLike = None,
    protect: Iterable[int] = (),
) -> FaultPlan:
    """Generate the scenario's :class:`FaultPlan` from a derived stream.

    ``nodes`` is the deployment's node-id population; ``protect`` (sinks,
    typically) is excluded from deaths.  A pure function of
    ``(spec, nodes, seed, protect)``.
    """
    rng = derive(seed, "serve-chaos")
    eligible = sorted(set(nodes) - set(protect))
    deaths: list[NodeDeath] = []
    for _ in range(spec.deaths):
        if not eligible:
            break
        at = int(rng.integers(1, spec.horizon_ticks))
        count = min(spec.nodes_per_death, len(eligible))
        picked_idx = rng.choice(len(eligible), size=count, replace=False)
        picked = sorted(eligible[int(i)] for i in picked_idx)
        eligible = [n for n in eligible if n not in set(picked)]
        deaths.append(NodeDeath(at=at, nodes=tuple(picked)))
    degradations: list[LinkDegradation] = []
    for _ in range(spec.degradations):
        start_max = max(1, spec.horizon_ticks - spec.window_ticks)
        start = int(rng.integers(0, start_max))
        degradations.append(
            LinkDegradation(
                start=start,
                until=start + spec.window_ticks,
                extra_loss=spec.extra_loss,
            )
        )
    return FaultPlan(
        deaths=tuple(sorted(deaths, key=lambda d: (d.at, d.nodes))),
        degradations=tuple(
            sorted(degradations, key=lambda d: (d.start, d.until))
        ),
    )


def _main(argv: Sequence[str] | None = None) -> int:
    """Write a generated scenario as ``--fault-plan`` JSON."""
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.chaos",
        description="Generate a deterministic serve-chaos fault plan.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--nodes", type=int, required=True,
        help="deployment size; node ids are 0..N-1",
    )
    parser.add_argument("--deaths", type=int, default=2)
    parser.add_argument("--degradations", type=int, default=1)
    parser.add_argument("--horizon-ticks", type=int, default=2000)
    parser.add_argument("--nodes-per-death", type=int, default=2)
    parser.add_argument("--extra-loss", type=float, default=0.35)
    parser.add_argument("--window-ticks", type=int, default=300)
    parser.add_argument(
        "--protect", type=int, nargs="*", default=[],
        help="node ids never killed (the serve sinks)",
    )
    parser.add_argument(
        "--out", default="-",
        help="output path for the fault-plan JSON ('-' = stdout)",
    )
    args = parser.parse_args(argv)
    spec = ChaosSpec(
        deaths=args.deaths,
        degradations=args.degradations,
        horizon_ticks=args.horizon_ticks,
        nodes_per_death=args.nodes_per_death,
        extra_loss=args.extra_loss,
        window_ticks=args.window_ticks,
    )
    plan = generate_fault_plan(
        spec,
        nodes=range(args.nodes),
        seed=args.seed,
        protect=args.protect,
    )
    text = json.dumps(plan.as_dict(), indent=1, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(_main())
