"""Bounded admission, load shedding, deadlines and failure containment.

The serving layer's overload/fault-tolerance policies live here, all of
them pure simulated-time machinery (no wall clock, no raw RNG — the
repro-lint invariants apply to this module like the rest of the serve
package):

* :class:`AdmissionPolicy` — a bounded request queue with a configurable
  shedding policy (:data:`SHED_POLICIES`) and an optional per-request
  deadline.  ``capacity=None`` keeps the queue unbounded, which together
  with ``deadline_s=None`` is the zero-cost default: the service takes
  the legacy synchronous path and its output stays byte-identical to the
  pre-admission serving layer.
* :class:`RetryPolicy` — a per-service-run budget of partial-result
  re-executions with exponential backoff.  Retries are charged honestly
  on the ledger; the service re-executes only the unreachable legs when
  the system offers a ``plan_retry`` hook (Pool, DIM) and falls back to a
  full re-execution otherwise.
* :class:`BreakerPolicy` / :class:`CircuitBreaker` — trips after
  ``threshold`` consecutive partial/failed executions, stays open for
  ``cooldown_s`` simulated seconds, and while open the service answers
  from stale-but-complete cache entries instead of executing.
* :class:`AdmissionQueue` — the runtime bounded queue.  Shedding is
  deterministic: victims are chosen by policy over the (time-ordered)
  pending list, never by iteration over a set.

Shed policies
-------------
``drop-tail``
    A full queue sheds the *incoming* request (classic tail drop).
``drop-oldest``
    A full queue sheds the head — the request that has waited longest and
    is most likely to miss its deadline anyway.
``priority-by-sink``
    Lower sink ids are higher priority (the base-station sink the bench
    places first outranks the quadrant sinks).  A full queue sheds the
    lowest-priority entry, newest first, which may be the incoming
    request itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.exceptions import ConfigurationError
from repro.serve.schedule import ServeRequest

__all__ = [
    "SHED_DROP_TAIL",
    "SHED_DROP_OLDEST",
    "SHED_PRIORITY",
    "SHED_POLICIES",
    "AdmissionPolicy",
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "AdmissionQueue",
]

SHED_DROP_TAIL = "drop-tail"
SHED_DROP_OLDEST = "drop-oldest"
SHED_PRIORITY = "priority-by-sink"

#: Shedding policies a bounded :class:`AdmissionQueue` understands.
SHED_POLICIES = (SHED_DROP_TAIL, SHED_DROP_OLDEST, SHED_PRIORITY)


@dataclass(frozen=True, slots=True)
class AdmissionPolicy:
    """Bounded-queue admission control for one :class:`QueryService`.

    Parameters
    ----------
    capacity:
        Maximum requests waiting for service.  ``None`` means unbounded
        (nothing is ever shed); ``0`` is rejected — a queue that can hold
        nothing cannot serve anything.
    shed_policy:
        Which request a full queue sheds (see module docstring).
    deadline_s:
        Simulated seconds after submission within which a request must
        *complete*.  A queued request whose deadline passes before
        service starts is timed out without executing (zero messages); a
        request that completes after its deadline keeps its honestly
        charged messages but reports ``OUTCOME_TIMEOUT``.  ``None``
        disables deadlines.
    """

    capacity: int | None = None
    shed_policy: str = SHED_DROP_TAIL
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 1:
            raise ConfigurationError(
                f"queue capacity must be >= 1 (or None), got {self.capacity}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"unknown shed policy {self.shed_policy!r}; choose from "
                f"{SHED_POLICIES}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ConfigurationError(
                f"deadline must be > 0 seconds, got {self.deadline_s}"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "queue_capacity": self.capacity,
            "shed_policy": self.shed_policy,
            "deadline_s": self.deadline_s,
        }


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Per-service-run budget of partial-result re-executions.

    ``budget`` bounds the *total* re-executions one service run may
    spend across all requests — a shared token bucket, so a persistently
    lossy network cannot amplify traffic unboundedly.  Retry ``k`` of a
    request waits ``backoff_base * backoff_factor ** (k - 1)`` simulated
    seconds (added to the request's latency and to the server occupancy).
    """

    budget: int = 0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    max_attempts: int = 2

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ConfigurationError(
                f"retry budget must be >= 0, got {self.budget}"
            )
        if self.backoff_base <= 0.0 or self.backoff_factor < 1.0:
            raise ConfigurationError(
                "backoff_base must be positive and backoff_factor >= 1, got "
                f"base={self.backoff_base} factor={self.backoff_factor}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def backoff(self, attempt: int) -> float:
        """Simulated delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.backoff_base * self.backoff_factor ** (attempt - 1)

    def as_dict(self) -> dict[str, Any]:
        return {
            "retry_budget": self.budget,
            "retry_backoff_base_s": self.backoff_base,
            "retry_backoff_factor": self.backoff_factor,
            "retry_max_attempts": self.max_attempts,
        }


@dataclass(frozen=True, slots=True)
class BreakerPolicy:
    """Circuit-breaker configuration.

    ``threshold`` consecutive partial/failed executions trip the breaker;
    it stays open for ``cooldown_s`` simulated seconds.  While open the
    service serves stale-but-complete cache entries (never executing);
    requests with no stale entry are shed.  After the cooldown the next
    request probes (half-open): success closes the breaker, another
    failure re-opens it.
    """

    threshold: int = 3
    cooldown_s: float = 5.0

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ConfigurationError(
                f"breaker threshold must be >= 1, got {self.threshold}"
            )
        if self.cooldown_s <= 0.0:
            raise ConfigurationError(
                f"breaker cooldown must be > 0 seconds, got {self.cooldown_s}"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "breaker_threshold": self.threshold,
            "breaker_cooldown_s": self.cooldown_s,
        }


class CircuitBreaker:
    """Runtime state machine for one :class:`BreakerPolicy`.

    All transitions are driven by simulated timestamps the service
    passes in; the breaker never reads a clock itself.
    """

    __slots__ = ("policy", "consecutive_failures", "open_until", "trips")

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.consecutive_failures = 0
        self.open_until = 0.0
        self.trips = 0

    def is_open(self, now: float) -> bool:
        """Whether executions are currently blocked.

        Past ``open_until`` the breaker is half-open: executions are
        allowed again, but the failure streak is preserved so one more
        failure re-trips immediately.
        """
        return now < self.open_until

    def record_success(self) -> None:
        """A complete execution closes the breaker and clears the streak."""
        self.consecutive_failures = 0
        self.open_until = 0.0

    def record_failure(self, now: float) -> bool:
        """Count a partial/failed execution; returns True when it trips."""
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.policy.threshold:
            self.open_until = now + self.policy.cooldown_s
            self.trips += 1
            # Half-open probes re-trip on the very next failure.
            self.consecutive_failures = self.policy.threshold - 1
            return True
        return False

    def snapshot(self) -> dict[str, Any]:
        return {
            "trips": self.trips,
            "consecutive_failures": self.consecutive_failures,
            "open_until_s": round(self.open_until, 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(trips={self.trips}, "
            f"streak={self.consecutive_failures}, "
            f"open_until={self.open_until:.3f})"
        )


class AdmissionQueue:
    """Bounded, time-ordered pending-request queue with shedding.

    The pending list stays in submission order (the schedule is already
    time-sorted and the service admits in order), so victim selection is
    deterministic: policies index the list, never iterate a set.
    ``max_depth`` records the deepest the queue ever got — the invariant
    the property tests pin is ``max_depth <= capacity``.
    """

    __slots__ = ("policy", "_pending", "max_depth", "shed_count")

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        self._pending: list[ServeRequest] = []
        self.max_depth = 0
        self.shed_count = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def head(self) -> ServeRequest | None:
        """The longest-waiting pending request (None when empty)."""
        return self._pending[0] if self._pending else None

    def offer(self, request: ServeRequest) -> ServeRequest | None:
        """Admit ``request``; returns the shed victim, if any.

        The victim may be ``request`` itself (``drop-tail``, or
        ``priority-by-sink`` when the newcomer is the lowest priority).
        """
        capacity = self.policy.capacity
        if capacity is None or len(self._pending) < capacity:
            self._pending.append(request)
            self.max_depth = max(self.max_depth, len(self._pending))
            return None
        policy = self.policy.shed_policy
        if policy == SHED_DROP_TAIL:
            self.shed_count += 1
            return request
        if policy == SHED_DROP_OLDEST:
            victim = self._pending.pop(0)
            self._pending.append(request)
            self.max_depth = max(self.max_depth, len(self._pending))
            self.shed_count += 1
            return victim
        # priority-by-sink: lower sink id = higher priority; among the
        # lowest-priority candidates the newest request is shed first.
        candidates = self._pending + [request]
        victim = max(candidates, key=lambda r: (r.sink, r.request_id))
        self.shed_count += 1
        if victim is request:
            return request
        self._pending.remove(victim)
        self._pending.append(request)
        self.max_depth = max(self.max_depth, len(self._pending))
        return victim

    def expired(self, now: float) -> list[ServeRequest]:
        """Pop every pending request whose deadline passed before ``now``.

        Uses the request's own ``deadline_s`` when set, else the policy's
        default.  Returns the timed-out requests in submission order.
        """
        default = self.policy.deadline_s
        timed_out: list[ServeRequest] = []
        kept: list[ServeRequest] = []
        for request in self._pending:
            deadline = request.deadline_s if request.deadline_s is not None else default
            if deadline is not None and request.time + deadline < now:
                timed_out.append(request)
            else:
                kept.append(request)
        self._pending = kept
        return timed_out

    def pop_batch(self, window: float) -> list[ServeRequest]:
        """Pop the head plus every pending request inside its batch window.

        Mirrors the legacy scheduler's admission-window semantics, but
        over *arrived* requests only: the queue never contains the
        future.
        """
        if not self._pending:
            return []
        head = self._pending[0]
        close = head.time + window
        batch: list[ServeRequest] = []
        kept: list[ServeRequest] = []
        for index, request in enumerate(self._pending):
            if index == 0 or request.time <= close:
                batch.append(request)
            else:
                kept.append(request)
        self._pending = kept
        return batch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdmissionQueue(pending={len(self._pending)}, "
            f"max_depth={self.max_depth}, shed={self.shed_count})"
        )
