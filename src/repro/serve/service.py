"""The online query service: scheduled workloads over a staged system.

:class:`QueryService` replays a :class:`~repro.serve.schedule.ServeSchedule`
against any :class:`~repro.exec.StagedQuerySystem`, exploiting the staged
pipeline in the two ways it was built for:

* **Plan/result caching** — a repeated ``(sink, query)`` is answered from
  the :class:`~repro.serve.cache.PlanResultCache` without planning or
  charging a single message; insert listeners invalidate exactly the
  entries whose resolved cell set the new event touched.
* **Batch coalescing** — requests admitted in the same batch window whose
  plans carry equal ``share_key``\\ s share ONE execution: the group
  leader disseminates, every member folds its own result from the shared
  :class:`~repro.exec.Execution`.  Folding is per-member and reads the
  stores at fold time, so members get exactly the result they would have
  gotten alone.

All timing is simulated (:class:`~repro.serve.clock.SimClock`); message
savings are measured off the real ledger via stats checkpoints, never
estimated.
"""

from __future__ import annotations

from typing import Hashable

from repro.exec import QueryPlan, StagedQuerySystem, check_query_dimensions
from repro.serve.cache import PlanResultCache
from repro.serve.clock import SimClock
from repro.serve.report import (
    OUTCOME_CACHE,
    OUTCOME_COALESCED,
    OUTCOME_EXECUTED,
    ServedQuery,
    ServeReport,
)
from repro.serve.schedule import ServeRequest, ServeSchedule

__all__ = ["QueryService"]


class QueryService:
    """Serve scheduled queries over one staged system.

    Parameters
    ----------
    system:
        Any :class:`~repro.exec.StagedQuerySystem` (Pool, DIM, DIFS,
        flooding, external).
    name:
        Label for reports; defaults to the system class name, lowered.
    clock:
        Simulated clock; a fresh zero-start :class:`SimClock` by default.
    cache:
        Plan/result cache.  ``None`` disables caching (the control
        configuration).  The service attaches the cache's invalidation
        listener to the system and detaches it in :meth:`close`.
    batch_window:
        Admission window in simulated seconds.  Requests arriving within
        ``window`` of the batch's first request are served together and
        may coalesce; ``0.0`` serves strictly one request at a time
        (no coalescing — the control configuration).
    hop_latency:
        Simulated per-hop one-way latency in seconds; a served request's
        radio round trip is ``2 * depth_hops * hop_latency``.
    slo_target_s:
        Latency target the report scores attainment against.
    """

    def __init__(
        self,
        system: StagedQuerySystem,
        *,
        name: str | None = None,
        clock: SimClock | None = None,
        cache: PlanResultCache | None = None,
        batch_window: float = 0.0,
        hop_latency: float = 0.01,
        slo_target_s: float = 0.5,
    ) -> None:
        if batch_window < 0.0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        if hop_latency < 0.0:
            raise ValueError(f"hop_latency must be >= 0, got {hop_latency}")
        self.system = system
        self.name = name if name is not None else type(system).__name__.lower()
        self.clock = clock if clock is not None else SimClock()
        self.cache = cache
        self.batch_window = batch_window
        self.hop_latency = hop_latency
        self.slo_target_s = slo_target_s
        self._closed = False
        if cache is not None:
            cache.attach(system)

    def close(self) -> None:
        """Detach the cache's insert listener from the system.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.cache is not None:
            self.cache.detach()

    # ------------------------------------------------------------------ #
    # Serving                                                            #
    # ------------------------------------------------------------------ #

    def run(self, schedule: ServeSchedule) -> ServeReport:
        """Replay the schedule; returns the run's accounting report."""
        report = ServeReport(
            system=self.name,
            duration=schedule.duration,
            slo_target_s=self.slo_target_s,
        )
        stats = self.system.network.stats
        run_start = stats.checkpoint()
        requests = schedule.requests
        i = 0
        while i < len(requests):
            batch = [requests[i]]
            i += 1
            close = batch[0].time
            if self.batch_window > 0.0:
                close = batch[0].time + self.batch_window
                while i < len(requests) and requests[i].time <= close:
                    batch.append(requests[i])
                    i += 1
            # The batch is served when its admission window closes.
            self.clock.advance_to(close)
            self._serve_batch(batch, report)
        report.messages_total = sum(stats.delta(run_start).values())
        return report

    def _serve_batch(self, batch: list[ServeRequest], report: ServeReport) -> None:
        tel = self.system.network.telemetry
        if tel is None:
            self._serve_batch_inner(batch, report)
            return
        with tel.span("serve-batch", phase="serve", size=len(batch)):
            self._serve_batch_inner(batch, report)

    def _serve_batch_inner(
        self, batch: list[ServeRequest], report: ServeReport
    ) -> None:
        stats = self.system.network.stats
        # Cache lookups come before planning: a hit skips resolving
        # entirely (no resolve telemetry, zero messages).
        groups: dict[Hashable, list[tuple[ServeRequest, QueryPlan]]] = {}
        for request in batch:
            check_query_dimensions(self.system.dimensions, request.query)
            if self.cache is not None:
                entry = self.cache.lookup(request.sink, request.query)
                if entry is not None:
                    # The folded result already sits at this sink; no
                    # radio round trip, latency is pure queue wait.
                    self._finish(
                        request,
                        report,
                        outcome=OUTCOME_CACHE,
                        messages=0,
                        saved=entry.cost,
                        depth_hops=0,
                        matches=entry.result.match_count,
                    )
                    continue
            plan = self.system.plan_query(request.sink, request.query)
            groups.setdefault(plan.share_key, []).append((request, plan))
        for members in groups.values():
            _, leader_plan = members[0]
            before = stats.checkpoint()
            execution = self.system.execute_plan(leader_plan)
            charged = sum(stats.delta(before).values())
            for position, (request, plan) in enumerate(members):
                result = self.system.fold_replies(plan, execution)
                if self.cache is not None:
                    self.cache.store(plan, result, cost=charged)
                self._finish(
                    request,
                    report,
                    outcome=OUTCOME_EXECUTED if position == 0 else OUTCOME_COALESCED,
                    messages=charged if position == 0 else 0,
                    saved=0 if position == 0 else charged,
                    depth_hops=result.depth_hops,
                    matches=result.match_count,
                )

    def _finish(
        self,
        request: ServeRequest,
        report: ServeReport,
        *,
        outcome: str,
        messages: int,
        saved: int,
        depth_hops: int,
        matches: int,
    ) -> None:
        round_trip = 2.0 * depth_hops * self.hop_latency
        served_at = self.clock.now + round_trip
        served = ServedQuery(
            request_id=request.request_id,
            sink=request.sink,
            submitted_at=request.time,
            served_at=served_at,
            outcome=outcome,
            messages=messages,
            saved_messages=saved,
            depth_hops=depth_hops,
            matches=matches,
            latency_s=served_at - request.time,
        )
        report.served.append(served)
        tel = self.system.network.telemetry
        if tel is not None:
            tel.record(
                "serve-request",
                phase="serve",
                messages=messages,
                request=request.request_id,
                sink=request.sink,
                outcome=outcome,
                saved=saved,
                matches=matches,
            )
