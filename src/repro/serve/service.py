"""The online query service: scheduled workloads over a staged system.

:class:`QueryService` replays a :class:`~repro.serve.schedule.ServeSchedule`
against any :class:`~repro.exec.StagedQuerySystem`, exploiting the staged
pipeline in the two ways it was built for:

* **Plan/result caching** — a repeated ``(sink, query)`` is answered from
  the :class:`~repro.serve.cache.PlanResultCache` without planning or
  charging a single message; insert listeners invalidate exactly the
  entries whose resolved cell set the new event touched.
* **Batch coalescing** — requests admitted in the same batch window whose
  plans carry equal ``share_key``\\ s share ONE execution: the group
  leader disseminates, every member folds its own result from the shared
  :class:`~repro.exec.Execution`.  Folding is per-member and reads the
  stores at fold time, so members get exactly the result they would have
  gotten alone.

The overload/fault layer (:mod:`repro.serve.admission`) composes on top:

* **Bounded admission** — with an :class:`AdmissionPolicy` the service
  switches to an event loop with a *server occupancy* model: one batch
  executes at a time, requests arriving while the server is busy queue
  up, a full queue sheds by policy, and queued requests whose deadline
  passes are timed out without executing.  ``admission=None`` keeps the
  legacy synchronous loop and its byte-identical output.
* **Partial-result retries** — with a :class:`RetryPolicy`, executions
  that fold to a :class:`~repro.dcs.PartialResult` are re-executed
  against a budget: only the unreachable legs when the system offers a
  ``plan_retry`` hook, the whole plan otherwise.  Retries are charged
  honestly on the ledger and their backoff waits extend the request's
  latency.
* **Circuit breaking** — with a :class:`BreakerPolicy`, ``threshold``
  consecutive partial/failed executions open the breaker; while open,
  requests are answered from stale-but-complete cache entries
  (``OUTCOME_STALE``) or shed, never executed into the failing network.

All timing is simulated (:class:`~repro.serve.clock.SimClock`); message
savings are measured off the real ledger via stats checkpoints, never
estimated.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.dcs import PartialResult, QueryResult, resolve_result
from repro.exceptions import DimensionMismatchError
from repro.exec import (
    Execution,
    QueryPlan,
    StagedQuerySystem,
    check_query_dimensions,
)
from repro.serve.admission import (
    AdmissionPolicy,
    AdmissionQueue,
    BreakerPolicy,
    CircuitBreaker,
    RetryPolicy,
)
from repro.serve.cache import PlanResultCache
from repro.serve.clock import SimClock
from repro.serve.report import (
    OUTCOME_CACHE,
    OUTCOME_COALESCED,
    OUTCOME_EXECUTED,
    OUTCOME_PARTIAL,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
    OUTCOME_STALE,
    OUTCOME_TIMEOUT,
    ServedQuery,
    ServeReport,
)
from repro.serve.schedule import ServeRequest, ServeSchedule

__all__ = ["QueryService", "merge_partial_results"]


def merge_partial_results(base: QueryResult, patch: QueryResult) -> QueryResult:
    """Combine a partial result with a retry pass over its missing cells.

    ``patch`` is the fold of a restricted retry plan (the system's
    ``plan_retry`` output) covering exactly ``base``'s unreachable cells.
    Events are merged with order-preserving dedup — Pool's fold collects
    events from *answered holders* even inside unanswered cells, so a
    retried cell's patch can re-deliver events the base already carries.
    Costs add (both executions were charged on the ledger); completeness
    is re-derived from the merged answered count, so a fully successful
    patch restores a plain :class:`~repro.dcs.QueryResult`.
    """
    if not isinstance(base, PartialResult):
        return base
    events = list(dict.fromkeys([*base.events, *patch.events]))
    visited = tuple(dict.fromkeys([*base.visited_nodes, *patch.visited_nodes]))
    if isinstance(patch, PartialResult):
        answered = min(
            base.answered_cells + patch.answered_cells, base.attempted_cells
        )
        unreachable_cells = patch.unreachable_cells
        unreachable_nodes = patch.unreachable_nodes
    else:
        answered = base.attempted_cells
        unreachable_cells = ()
        unreachable_nodes = ()
    return resolve_result(
        events=events,
        forward_cost=base.forward_cost + patch.forward_cost,
        reply_cost=base.reply_cost + patch.reply_cost,
        visited_nodes=visited,
        detail=base.detail,
        depth_hops=max(base.depth_hops, patch.depth_hops),
        attempted_cells=base.attempted_cells,
        answered_cells=answered,
        unreachable_cells=unreachable_cells,
        unreachable_nodes=unreachable_nodes,
    )


class QueryService:
    """Serve scheduled queries over one staged system.

    Parameters
    ----------
    system:
        Any :class:`~repro.exec.StagedQuerySystem` (Pool, DIM, DIFS,
        flooding, external).
    name:
        Label for reports; defaults to the system class name, lowered.
    clock:
        Simulated clock; a fresh zero-start :class:`SimClock` by default.
    cache:
        Plan/result cache.  ``None`` disables caching (the control
        configuration).  The service attaches the cache's invalidation
        listener to the system and detaches it in :meth:`close`.
    batch_window:
        Admission window in simulated seconds.  Requests arriving within
        ``window`` of the batch's first request are served together and
        may coalesce; ``0.0`` serves strictly one request at a time
        (no coalescing — the control configuration).
    hop_latency:
        Simulated per-hop one-way latency in seconds; a served request's
        radio round trip is ``2 * depth_hops * hop_latency``.
    slo_target_s:
        Latency target the report scores attainment against.
    admission:
        Bounded-queue/deadline policy.  ``None`` (the default) keeps the
        legacy synchronous loop, byte-identical to the pre-admission
        service.
    retry:
        Partial-result retry budget.  ``None`` disables retries.
    breaker:
        Circuit-breaker policy.  ``None`` disables the breaker.  With a
        breaker and a cache, the cache is switched to ``keep_stale`` so
        invalidated-but-complete entries can answer while the breaker is
        open.

    The service is a context manager; ``with QueryService(...) as svc:``
    guarantees :meth:`close` (cache listener detach) even when a run
    raises.
    """

    def __init__(
        self,
        system: StagedQuerySystem,
        *,
        name: str | None = None,
        clock: SimClock | None = None,
        cache: PlanResultCache | None = None,
        batch_window: float = 0.0,
        hop_latency: float = 0.01,
        slo_target_s: float = 0.5,
        admission: AdmissionPolicy | None = None,
        retry: RetryPolicy | None = None,
        breaker: BreakerPolicy | None = None,
    ) -> None:
        if batch_window < 0.0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        if hop_latency < 0.0:
            raise ValueError(f"hop_latency must be >= 0, got {hop_latency}")
        self.system = system
        self.name = name if name is not None else type(system).__name__.lower()
        self.clock = clock if clock is not None else SimClock()
        self.cache = cache
        self.batch_window = batch_window
        self.hop_latency = hop_latency
        self.slo_target_s = slo_target_s
        self.admission = admission
        self.retry = retry
        self.breaker = CircuitBreaker(breaker) if breaker is not None else None
        self._retry_tokens = retry.budget if retry is not None else 0
        self._closed = False
        if cache is not None:
            if breaker is not None:
                cache.keep_stale = True
            cache.attach(system)

    def close(self) -> None:
        """Detach the cache's insert listener from the system.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.cache is not None:
            self.cache.detach()

    def __enter__(self) -> QueryService:
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @property
    def retry_tokens(self) -> int:
        """Remaining re-executions in the retry budget."""
        return self._retry_tokens

    def _policy_dict(self) -> dict[str, Any] | None:
        if self.admission is None and self.retry is None and self.breaker is None:
            return None
        policy: dict[str, Any] = {}
        if self.admission is not None:
            policy.update(self.admission.as_dict())
        if self.retry is not None:
            policy.update(self.retry.as_dict())
        if self.breaker is not None:
            policy.update(self.breaker.policy.as_dict())
        return policy

    # ------------------------------------------------------------------ #
    # Serving                                                            #
    # ------------------------------------------------------------------ #

    def run(self, schedule: ServeSchedule) -> ServeReport:
        """Replay the schedule; returns the run's accounting report."""
        report = ServeReport(
            system=self.name,
            duration=schedule.duration,
            slo_target_s=self.slo_target_s,
            policy=self._policy_dict(),
        )
        stats = self.system.network.stats
        run_start = stats.checkpoint()
        if self.admission is None:
            self._run_synchronous(schedule.requests, report)
        else:
            self._run_admitted(schedule.requests, report)
        report.messages_total = sum(stats.delta(run_start).values())
        if self.breaker is not None:
            report.breaker_trips = self.breaker.trips
        return report

    def _run_synchronous(
        self, requests: tuple[ServeRequest, ...], report: ServeReport
    ) -> None:
        """The legacy loop: an infinitely parallel server.

        Every batch is served the instant its admission window closes,
        regardless of how long earlier batches "took" — the pre-admission
        semantics, preserved verbatim so default runs stay byte-identical.
        """
        i = 0
        while i < len(requests):
            batch = [requests[i]]
            i += 1
            close = batch[0].time
            if self.batch_window > 0.0:
                close = batch[0].time + self.batch_window
                while i < len(requests) and requests[i].time <= close:
                    batch.append(requests[i])
                    i += 1
            # The batch is served when its admission window closes.
            self.clock.advance_to(close)
            self._serve_batch(batch, report)

    def _run_admitted(
        self, requests: tuple[ServeRequest, ...], report: ServeReport
    ) -> None:
        """Event loop with server occupancy and bounded admission.

        One batch occupies the server at a time.  The loop interleaves two
        event sources in time order: request arrivals (offered to the
        queue, which may shed) and service-start instants (the later of
        the server freeing up and the queue head's arrival).  Queued
        requests whose deadline passes before service starts are timed
        out without executing; requests that complete past their deadline
        keep their honestly charged messages but report a timeout.
        """
        assert self.admission is not None
        queue = AdmissionQueue(self.admission)
        self._queue = queue
        free_at = self.clock.now
        tel = self.system.network.telemetry
        i = 0
        while i < len(requests) or len(queue):
            next_arrival = requests[i].time if i < len(requests) else None
            head = queue.head
            start = max(free_at, head.time) if head is not None else None
            if start is not None and (next_arrival is None or start <= next_arrival):
                # Serve the queue before admitting later arrivals.
                self.clock.advance_to(start)
                for timed_out in queue.expired(start):
                    self._finish(
                        timed_out,
                        report,
                        outcome=OUTCOME_TIMEOUT,
                        messages=0,
                        saved=0,
                        depth_hops=0,
                        matches=0,
                    )
                batch = queue.pop_batch(self.batch_window)
                if batch:
                    done_at = self._serve_batch(batch, report)
                    free_at = max(free_at, done_at)
                continue
            request = requests[i]
            i += 1
            self.clock.advance_to(request.time)
            victim = queue.offer(request)
            if victim is not None:
                if tel is not None:
                    tel.record(
                        "serve-shed",
                        phase="serve",
                        request=victim.request_id,
                        sink=victim.sink,
                        depth=len(queue),
                        policy=queue.policy.shed_policy,
                    )
                self._finish(
                    victim,
                    report,
                    outcome=OUTCOME_SHED,
                    messages=0,
                    saved=0,
                    depth_hops=0,
                    matches=0,
                )

    def _serve_batch(
        self, batch: list[ServeRequest], report: ServeReport
    ) -> float:
        tel = self.system.network.telemetry
        if tel is None:
            return self._serve_batch_inner(batch, report)
        with tel.span("serve-batch", phase="serve", size=len(batch)):
            return self._serve_batch_inner(batch, report)

    def _serve_batch_inner(
        self, batch: list[ServeRequest], report: ServeReport
    ) -> float:
        """Serve one admitted batch; returns its completion time.

        The return value (max ``served_at`` across the batch, at least
        the batch's start time) drives the admitted loop's server
        occupancy; the legacy loop ignores it.
        """
        done_at = self.clock.now
        # Cache lookups come before planning: a hit skips resolving
        # entirely (no resolve telemetry, zero messages).
        groups: dict[Hashable, list[tuple[ServeRequest, QueryPlan]]] = {}
        for request in batch:
            try:
                check_query_dimensions(self.system.dimensions, request.query)
            except DimensionMismatchError:
                # A malformed request is the client's fault, never the
                # service's: reject it and keep serving the rest.
                self._finish(
                    request,
                    report,
                    outcome=OUTCOME_REJECTED,
                    messages=0,
                    saved=0,
                    depth_hops=0,
                    matches=0,
                )
                continue
            if self.cache is not None:
                entry = self.cache.lookup(request.sink, request.query)
                if entry is not None:
                    # The folded result already sits at this sink; no
                    # radio round trip, latency is pure queue wait.
                    self._finish(
                        request,
                        report,
                        outcome=OUTCOME_CACHE,
                        messages=0,
                        saved=entry.cost,
                        depth_hops=0,
                        matches=entry.result.match_count,
                    )
                    continue
            if self.breaker is not None and self.breaker.is_open(self.clock.now):
                self._serve_while_open(request, report)
                continue
            plan = self.system.plan_query(request.sink, request.query)
            groups.setdefault(plan.share_key, []).append((request, plan))
        for members in groups.values():
            done_at = max(done_at, self._execute_group(members, report))
        return done_at

    def _serve_while_open(
        self, request: ServeRequest, report: ServeReport
    ) -> None:
        """Answer without executing: stale-but-complete cache entry or shed."""
        stale = (
            self.cache.lookup_stale(request.sink, request.query)
            if self.cache is not None
            else None
        )
        if stale is not None:
            self._finish(
                request,
                report,
                outcome=OUTCOME_STALE,
                messages=0,
                saved=stale.cost,
                depth_hops=0,
                matches=stale.result.match_count,
            )
        else:
            self._finish(
                request,
                report,
                outcome=OUTCOME_SHED,
                messages=0,
                saved=0,
                depth_hops=0,
                matches=0,
            )

    def _execute_group(
        self,
        members: list[tuple[ServeRequest, QueryPlan]],
        report: ServeReport,
    ) -> float:
        stats = self.system.network.stats
        _, leader_plan = members[0]
        before = stats.checkpoint()
        execution = self.system.execute_plan(leader_plan)
        charged = sum(stats.delta(before).values())
        done_at = self.clock.now
        group_failed = False
        for position, (request, plan) in enumerate(members):
            result = self.system.fold_replies(plan, execution)
            retries = 0
            extra_cost = 0
            backoff_wait = 0.0
            while (
                result.is_partial
                and self.retry is not None
                and self._retry_tokens > 0
                and retries < self.retry.max_attempts
            ):
                self._retry_tokens -= 1
                retries += 1
                backoff_wait += self.retry.backoff(retries)
                result, cost = self._retry_partial(plan, result)
                extra_cost += cost
            if self.cache is not None:
                self.cache.store(plan, result, cost=charged + extra_cost)
            complete = not result.is_partial
            if complete:
                outcome = OUTCOME_EXECUTED if position == 0 else OUTCOME_COALESCED
            else:
                outcome = OUTCOME_PARTIAL
                group_failed = True
            served_at = self._finish(
                request,
                report,
                outcome=outcome,
                messages=(charged if position == 0 else 0) + extra_cost,
                saved=0 if position == 0 else charged,
                depth_hops=result.depth_hops,
                matches=result.match_count,
                completeness=result.completeness,
                retries=retries,
                extra_latency=backoff_wait,
            )
            done_at = max(done_at, served_at)
        if self.breaker is not None:
            if group_failed:
                tripped = self.breaker.record_failure(self.clock.now)
                if tripped:
                    tel = self.system.network.telemetry
                    if tel is not None:
                        tel.record(
                            "breaker-trip",
                            phase="serve",
                            open_until=round(self.breaker.open_until, 6),
                            trips=self.breaker.trips,
                        )
            else:
                self.breaker.record_success()
        return done_at

    def _retry_partial(
        self, plan: QueryPlan, result: QueryResult
    ) -> tuple[QueryResult, int]:
        """One budgeted re-execution pass; returns (result, charged).

        Systems exposing ``plan_retry`` (Pool, DIM) get a restricted plan
        covering only the unreachable cells — the cheap path.  Everything
        else re-executes the full plan and keeps whichever result is more
        complete (re-execution draws fresh per-transmission loss, so it
        can genuinely do better).
        """
        stats = self.system.network.stats
        before = stats.checkpoint()
        plan_retry = getattr(self.system, "plan_retry", None)
        if plan_retry is not None:
            subplan = plan_retry(plan, result)
            if subplan is not None:
                execution: Execution = self.system.execute_plan(subplan)
                patch = self.system.fold_replies(subplan, execution)
                merged = merge_partial_results(result, patch)
                return merged, sum(stats.delta(before).values())
        execution = self.system.execute_plan(plan)
        again = self.system.fold_replies(plan, execution)
        cost = sum(stats.delta(before).values())
        best = again if again.completeness >= result.completeness else result
        return best, cost

    def _finish(
        self,
        request: ServeRequest,
        report: ServeReport,
        *,
        outcome: str,
        messages: int,
        saved: int,
        depth_hops: int,
        matches: int,
        completeness: float = 1.0,
        retries: int = 0,
        extra_latency: float = 0.0,
    ) -> float:
        round_trip = 2.0 * depth_hops * self.hop_latency
        served_at = self.clock.now + round_trip + extra_latency
        if outcome not in (OUTCOME_SHED, OUTCOME_REJECTED, OUTCOME_TIMEOUT):
            # Deadline-at-completion: a late answer is a timeout, but its
            # ledger charges stand — the network really spent them.
            deadline = (
                request.deadline_s
                if request.deadline_s is not None
                else (self.admission.deadline_s if self.admission else None)
            )
            if deadline is not None and served_at - request.time > deadline:
                outcome = OUTCOME_TIMEOUT
        served = ServedQuery(
            request_id=request.request_id,
            sink=request.sink,
            submitted_at=request.time,
            served_at=served_at,
            outcome=outcome,
            messages=messages,
            saved_messages=saved,
            depth_hops=depth_hops,
            matches=matches,
            latency_s=served_at - request.time,
            completeness=completeness,
            retries=retries,
        )
        report.served.append(served)
        tel = self.system.network.telemetry
        if tel is not None:
            attrs: dict[str, Any] = {}
            # Only non-default attrs are attached, keeping lossless
            # telemetry byte-identical to the pre-admission layer.
            if completeness < 1.0:
                attrs["completeness"] = round(completeness, 6)
            if retries:
                attrs["retries"] = retries
            tel.record(
                "serve-request",
                phase="serve",
                messages=messages,
                request=request.request_id,
                sink=request.sink,
                outcome=outcome,
                saved=saved,
                matches=matches,
                **attrs,
            )
        return served_at
