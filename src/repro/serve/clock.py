"""Deterministic simulated clock for the serving layer.

The serving layer reasons about time constantly — admission windows,
queue waits, SLO attainment, throughput — and every one of those numbers
must be byte-identical across runs, machines and ``--jobs``.  So the
serve clock is *simulated*: it starts at zero, advances only when the
service says so (to a request's admission deadline, never backwards), and
never consults the wall clock.  ``time.time``/``datetime.now`` are banned
here by repro_lint REP002; wall-clock profiling belongs to the bench
timing fields, not to anything a report or cache decision reads.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A monotone simulated clock (seconds as ``float``)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move forward by ``seconds`` (>= 0); returns the new time."""
        if seconds < 0.0:
            raise ValueError(f"cannot advance by negative time: {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move forward to ``timestamp``; earlier timestamps are a no-op.

        Monotonicity by construction: replaying a request log can never
        rewind the clock, so latencies stay non-negative.
        """
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def deadline(self, timeout: float) -> float:
        """The absolute simulated time ``timeout`` seconds from now.

        The admission layer stamps per-request deadlines with this so
        every expiry decision is a pure function of simulated time.
        """
        if timeout <= 0.0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        return self._now + timeout

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now={self._now:.6f})"
