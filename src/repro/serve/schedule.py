"""Scheduled query workloads for the serving layer.

A schedule is a time-stamped request log: who asks what, when.  Three
arrival patterns cover the serving scenarios the benchmark cares about:

``poisson``
    Memoryless arrivals at a constant rate — the classic open-loop
    workload model.
``bursts``
    Poisson-distributed burst epicenters, each releasing a clump of
    near-simultaneous requests — what batch coalescing exists for.
``diurnal``
    A non-homogeneous Poisson process whose rate follows one sinusoidal
    cycle over the schedule (quiet start, busy middle) — thinned from a
    homogeneous candidate stream, the standard construction.

Queries are drawn from a finite *hot pool* with probability
``repeat_fraction`` (repeated-query traffic — what the plan/result cache
exists for) and freshly generated otherwise.  Every draw derives from the
schedule seed, so a schedule is a pure function of its parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.events.generators import QueryWorkload
from repro.events.queries import RangeQuery
from repro.exceptions import ConfigurationError
from repro.rng import SeedLike, derive

__all__ = ["ServeRequest", "ServeSchedule", "build_schedule", "ARRIVAL_PATTERNS"]

ARRIVAL_PATTERNS = ("poisson", "bursts", "diurnal")


@dataclass(frozen=True, slots=True)
class ServeRequest:
    """One scheduled query submission.

    ``deadline_s`` optionally overrides the service's admission-policy
    deadline for this request alone (``None`` inherits the policy
    default); it is relative to ``time``, like the policy deadline.
    """

    request_id: int
    time: float
    sink: int
    query: RangeQuery
    deadline_s: float | None = None


@dataclass(frozen=True, slots=True)
class ServeSchedule:
    """An immutable, time-ordered request log."""

    requests: tuple[ServeRequest, ...]
    duration: float

    def __len__(self) -> int:
        return len(self.requests)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServeSchedule({len(self.requests)} requests over "
            f"{self.duration:.1f}s)"
        )


def _arrival_times(
    pattern: str,
    duration: float,
    rate: float,
    seed: SeedLike,
    burst_size: int,
) -> list[float]:
    rng = derive(seed, "serve-arrivals")
    times: list[float] = []
    if pattern == "poisson":
        t = rng.exponential(1.0 / rate)
        while t < duration:
            times.append(t)
            t += rng.exponential(1.0 / rate)
    elif pattern == "bursts":
        # Burst epicenters arrive Poisson at rate/burst_size, preserving
        # the overall request rate; members trail the epicenter closely.
        epicenter_rate = rate / burst_size
        t = rng.exponential(1.0 / epicenter_rate)
        while t < duration:
            for _ in range(burst_size):
                offset = rng.exponential(0.01)
                if t + offset < duration:
                    times.append(t + offset)
            t += rng.exponential(1.0 / epicenter_rate)
    elif pattern == "diurnal":
        # Thinning: candidates at the peak rate 2*rate, accepted with
        # probability lambda(t)/peak where lambda(t) = rate*(1-cos(2pi
        # t/duration)) — one quiet-to-busy-to-quiet cycle.
        peak = 2.0 * rate
        t = rng.exponential(1.0 / peak)
        while t < duration:
            lam = rate * (1.0 - math.cos(2.0 * math.pi * t / duration))
            if rng.random() < lam / peak:
                times.append(t)
            t += rng.exponential(1.0 / peak)
    else:
        raise ConfigurationError(
            f"unknown arrival pattern {pattern!r}; choose from "
            f"{ARRIVAL_PATTERNS}"
        )
    times.sort()
    return times


def build_schedule(
    *,
    workload: QueryWorkload,
    sinks: Sequence[int],
    duration: float,
    rate: float,
    seed: SeedLike = None,
    pattern: str = "poisson",
    repeat_fraction: float = 0.75,
    unique_queries: int = 8,
    burst_size: int = 4,
) -> ServeSchedule:
    """Build a deterministic scheduled workload.

    Parameters
    ----------
    workload:
        Query shape generator (exact / m-partial, range-size law).
    sinks:
        Nodes requests may be issued from (drawn uniformly).
    duration:
        Schedule length in simulated seconds.
    rate:
        Mean request arrival rate (requests per simulated second).
    pattern:
        Arrival process: ``"poisson"``, ``"bursts"`` or ``"diurnal"``.
    repeat_fraction:
        Probability a request re-asks a hot-pool query (cacheable
        traffic) instead of a fresh one-off query.
    unique_queries:
        Size of the hot query pool.
    burst_size:
        Requests per burst (``pattern="bursts"`` only).
    """
    if duration <= 0.0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    if rate <= 0.0:
        raise ConfigurationError(f"rate must be > 0, got {rate}")
    if not 0.0 <= repeat_fraction <= 1.0:
        raise ConfigurationError(
            f"repeat_fraction must be in [0, 1], got {repeat_fraction}"
        )
    if unique_queries < 1:
        raise ConfigurationError(
            f"unique_queries must be >= 1, got {unique_queries}"
        )
    if burst_size < 1:
        raise ConfigurationError(f"burst_size must be >= 1, got {burst_size}")
    if not sinks:
        raise ConfigurationError("need at least one sink node")
    hot_pool = workload.generate(
        unique_queries, seed=derive(seed, "serve-hot-pool")
    )
    times = _arrival_times(pattern, duration, rate, seed, burst_size)
    picker = derive(seed, "serve-mix")
    requests: list[ServeRequest] = []
    fresh = 0
    for i, t in enumerate(times):
        sink = sinks[int(picker.integers(len(sinks)))]
        if picker.random() < repeat_fraction:
            query = hot_pool[int(picker.integers(len(hot_pool)))]
        else:
            query = workload.generate(
                1, seed=derive(seed, "serve-fresh", fresh)
            )[0]
            fresh += 1
        requests.append(
            ServeRequest(request_id=i, time=t, sink=sink, query=query)
        )
    return ServeSchedule(requests=tuple(requests), duration=duration)
