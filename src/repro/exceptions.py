"""Exception hierarchy for the ``repro`` library.

All library errors derive from :class:`ReproError` so applications can catch
everything raised by this package with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ValidationError",
    "DimensionMismatchError",
    "RoutingError",
    "DeliveryError",
    "UnreachableError",
    "TopologyError",
    "StorageError",
    "CapacityError",
    "QueryError",
]


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A system was constructed with inconsistent or invalid parameters."""


class ValidationError(ReproError, ValueError):
    """User supplied data (event values, query bounds) is out of domain."""


class DimensionMismatchError(ValidationError):
    """An event or query has the wrong number of dimensions for the system."""

    def __init__(self, expected: int, actual: int, what: str = "event") -> None:
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"{what} has {actual} dimension(s); this system requires {expected}"
        )


class TopologyError(ReproError):
    """The physical network layout violates an assumption (e.g. no nodes)."""


class RoutingError(ReproError):
    """GPSR could not make forwarding progress."""


class DeliveryError(RoutingError):
    """A packet exhausted its TTL or looped without reaching the target."""

    def __init__(self, message: str, partial_path: list[int] | None = None) -> None:
        super().__init__(message)
        self.partial_path: list[int] = partial_path or []


class UnreachableError(DeliveryError):
    """ARQ gave up: a hop stayed undeliverable after the retry budget.

    Raised by the reliability layer when a one-hop transmission (plus all
    of its retransmissions) was lost — link loss, a degradation window or
    the receiver dying mid-exchange.  ``failed_hop`` names the
    ``(sender, receiver)`` pair that exhausted its budget; storage
    systems catch this and degrade to a partial result instead of
    propagating.
    """

    def __init__(
        self,
        message: str,
        partial_path: list[int] | None = None,
        *,
        failed_hop: tuple[int, int] | None = None,
    ) -> None:
        super().__init__(message, partial_path)
        self.failed_hop = failed_hop


class StorageError(ReproError):
    """An index node could not store or hand off an event."""


class CapacityError(StorageError):
    """A node's storage budget is exhausted and no delegate is available."""


class QueryError(ReproError):
    """A query could not be resolved or forwarded."""
