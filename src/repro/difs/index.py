"""A DIFS-style distributed single-attribute range index.

DIFS [Greenstein et al. 2003] builds a tree of *index nodes* over value
ranges of one attribute: the root covers ``[0, 1)``, each node splits its
range into ``b`` children, and every node is placed in the field by
hashing its range (GHT-style), which spreads index load across the
network.  Events insert into the leaf covering their value (plus
histogram updates up the tree); a range query decomposes into O(b·log n)
*canonical ranges* — the maximal tree nodes fully inside the query — and
visits only their index nodes.

Faithful simplifications (documented):

* Real DIFS maintains histograms at interior nodes and stores event
  pointers at leaves; we store the events at the leaves directly and
  charge interior-node updates as messages, which preserves the
  communication pattern the comparison cares about.
* Real DIFS hashes a node to multiple locations by geographic scope; we
  use one hashed location per index node (the single-root variant of the
  paper).

For multi-dimensional queries DIFS can only index one attribute: the
query's other dimensions are filtered *after* retrieval, which is exactly
the weakness (Section 1 of the Pool paper) that motivated DIM and Pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dcs import InsertReceipt, QueryResult, resolve_result
from repro.events.event import Event
from repro.events.queries import RangeQuery
from repro.exceptions import (
    ConfigurationError,
    DimensionMismatchError,
    UnreachableError,
)
from repro.exec import Execution, QueryPlan, run_staged
from repro.ght.ght import GeographicHashTable
from repro.network.messages import MessageCategory
from repro.network.network import Network

__all__ = ["DifsIndex", "DifsQueryDetail"]


@dataclass(frozen=True, slots=True)
class _IndexRange:
    """One tree node: the value range ``[lo, hi)`` at a given depth."""

    lo: float
    hi: float
    depth: int

    def contains(self, value: float) -> bool:
        if self.lo <= value < self.hi:
            return True
        # Top boundary: 1.0 belongs to the last range of each level.
        return value == 1.0 == self.hi

    def key(self) -> tuple[str, float, float, int]:
        return ("difs", self.lo, self.hi, self.depth)


@dataclass(slots=True)
class DifsQueryDetail:
    """DIFS-specific diagnostics for a query result."""

    canonical_ranges: tuple[tuple[float, float], ...]
    index_nodes: tuple[int, ...]
    post_filtered: int  # events fetched but discarded by other dimensions


class DifsIndex:
    """A DIFS-style index over one attribute of k-dimensional events.

    Parameters
    ----------
    network:
        Communication substrate.
    dimensions:
        Event dimensionality ``k``.
    attribute:
        Which dimension (0-based) the tree indexes.
    branching:
        Children per tree node (DIFS's ``b``; must be >= 2).
    depth:
        Leaf depth; the value space splits into ``branching ** depth``
        leaves.
    """

    def __init__(
        self,
        network: Network,
        dimensions: int,
        *,
        attribute: int = 0,
        branching: int = 4,
        depth: int = 3,
    ) -> None:
        if dimensions < 1:
            raise ConfigurationError(f"dimensions must be >= 1, got {dimensions}")
        if not 0 <= attribute < dimensions:
            raise ConfigurationError(
                f"attribute {attribute} outside 0..{dimensions - 1}"
            )
        if branching < 2:
            raise ConfigurationError(f"branching must be >= 2, got {branching}")
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.network = network.scope("difs")
        self.dimensions = dimensions
        self.attribute = attribute
        self.branching = branching
        self.depth = depth
        self._ght = GeographicHashTable(self.network, salt="difs")
        self._storage: dict[tuple[float, float], list[Event]] = {}
        self._event_count = 0
        # Called after every stored event with ((lo, hi), event, leaf_node)
        # — leaf ranges are the native cell identity DIFS plans resolve
        # to, so the serve-layer cache invalidates on exactly the leaves
        # a cached plan covers.
        self.insert_listeners: list[
            Callable[[tuple[float, float], Event, int], None]
        ] = []

    # ------------------------------------------------------------------ #
    # Tree geometry                                                      #
    # ------------------------------------------------------------------ #

    def leaf_width(self) -> float:
        """Value width of one leaf range."""
        return 1.0 / (self.branching**self.depth)

    def leaf_for_value(self, value: float) -> _IndexRange:
        """The leaf range covering ``value``."""
        leaves = self.branching**self.depth
        index = min(int(value * leaves), leaves - 1)
        width = self.leaf_width()
        return _IndexRange(index * width, (index + 1) * width, self.depth)

    def index_node_of(self, index_range: _IndexRange) -> int:
        """Physical node hosting a tree node (hashed placement)."""
        return self._ght.home_node(index_range.key())

    def ancestors(self, leaf: _IndexRange) -> list[_IndexRange]:
        """The leaf's ancestors up to (excluding) the root."""
        out: list[_IndexRange] = []
        lo, hi, depth = leaf.lo, leaf.hi, leaf.depth
        while depth > 1:
            depth -= 1
            width = 1.0 / (self.branching**depth)
            slot = int(lo / width + 1e-9)
            lo, hi = slot * width, (slot + 1) * width
            out.append(_IndexRange(lo, hi, depth))
        return out

    def canonical_ranges(self, lo: float, hi: float) -> list[_IndexRange]:
        """Maximal tree nodes fully covered by ``[lo, hi]``.

        The classic canonical-range decomposition: walk levels top-down,
        taking a node when its whole range fits inside the query, and
        recursing into partially covered nodes; at leaf level, partially
        covered leaves are taken too (their events get filtered).
        """
        result: list[_IndexRange] = []
        stack = [
            _IndexRange(i / self.branching, (i + 1) / self.branching, 1)
            for i in range(self.branching)
        ]
        while stack:
            node = stack.pop()
            # Nodes are half-open [lo, hi) but the query is closed [lo, hi]:
            # a node starting exactly at the query's upper bound still
            # holds the boundary value and must not be pruned.  Nodes
            # ending at 1.0 are closed at the top (value 1.0 clamps in).
            disjoint_below = node.hi <= lo and not (node.hi == 1.0 and lo == 1.0)
            if disjoint_below or node.lo > hi:
                continue
            if lo <= node.lo and node.hi <= hi:
                result.append(node)
                continue
            if node.depth == self.depth:
                result.append(node)  # partial leaf: post-filter
                continue
            width = (node.hi - node.lo) / self.branching
            for i in range(self.branching):
                stack.append(
                    _IndexRange(
                        node.lo + i * width,
                        node.lo + (i + 1) * width,
                        node.depth + 1,
                    )
                )
        result.sort(key=lambda r: r.lo)
        return result

    # ------------------------------------------------------------------ #
    # DataCentricStore protocol                                          #
    # ------------------------------------------------------------------ #

    def insert(self, event: Event, source: int | None = None) -> InsertReceipt:
        """Store the event at its leaf's index node; update ancestors.

        Cost: one GPSR unicast to the leaf node plus one histogram-update
        unicast from the leaf to each ancestor index node (the DIFS
        communication pattern).
        """
        if event.dimensions != self.dimensions:
            raise DimensionMismatchError(self.dimensions, event.dimensions)
        value = event.values[self.attribute]
        leaf = self.leaf_for_value(value)
        leaf_node = self.index_node_of(leaf)
        src = source if source is not None else event.source
        if src is None:
            src = leaf_node
        try:
            path = self.network.unicast(MessageCategory.INSERT, src, leaf_node)
        except UnreachableError as err:
            return InsertReceipt(
                home_node=leaf_node,
                hops=max(len(err.partial_path) - 1, 0),
                detail=(leaf.lo, leaf.hi),
                delivered=False,
            )
        hops = len(path) - 1
        previous = leaf_node
        for ancestor in self.ancestors(leaf):
            ancestor_node = self.index_node_of(ancestor)
            try:
                update = self.network.unicast(
                    MessageCategory.INSERT, previous, ancestor_node
                )
            except UnreachableError as err:
                # A lost histogram update leaves the ancestor stale, but
                # the event itself is safely stored at the leaf.
                hops += max(len(err.partial_path) - 1, 0)
                break
            hops += len(update) - 1
            previous = ancestor_node
        self._storage.setdefault((leaf.lo, leaf.hi), []).append(event)
        self._event_count += 1
        for listener in self.insert_listeners:
            listener((leaf.lo, leaf.hi), event, leaf_node)
        return InsertReceipt(
            home_node=leaf_node, hops=hops, detail=(leaf.lo, leaf.hi)
        )

    def query(self, sink: int, query: RangeQuery) -> QueryResult:
        """Range query: canonical decomposition on the indexed attribute.

        Only the indexed dimension prunes; the other dimensions are
        filtered after retrieval (counted in ``detail.post_filtered``) —
        the single-attribute limitation the Pool paper holds against
        DIFS-generation systems.

        Thin compatibility wrapper over the staged pipeline
        (:meth:`plan_query` / :meth:`execute_plan` / :meth:`fold_replies`).
        """
        return run_staged(self, sink, query)

    def plan_query(self, sink: int, query: RangeQuery) -> QueryPlan:
        """Pure resolving: canonical decomposition at the sink, zero messages."""
        lo, hi = query.bounds[self.attribute]
        ranges = self.canonical_ranges(lo, hi)
        # Visit the leaf nodes under every canonical range (data lives at
        # leaves; interior hits fan out to their leaf descendants).
        leaf_ranges: list[_IndexRange] = []
        for node in ranges:
            leaf_ranges.extend(self._leaves_under(node))
        leaf_nodes = tuple(self.index_node_of(leaf) for leaf in leaf_ranges)
        destinations = sorted(set(leaf_nodes))
        return QueryPlan(
            system="difs",
            sink=sink,
            query=query,
            cells=tuple((leaf.lo, leaf.hi) for leaf in leaf_ranges),
            destinations=tuple(destinations),
            share_key=("difs", sink, tuple(destinations)),
            detail=(
                tuple((r.lo, r.hi) for r in ranges),
                tuple(leaf_ranges),
                leaf_nodes,
            ),
        )

    def execute_plan(self, plan: QueryPlan) -> Execution:
        """Disseminate to the leaf index nodes; collect the replies."""
        if plan.is_local:
            return Execution(answered=frozenset(plan.destinations))
        delivery = self.network.disseminate(
            MessageCategory.QUERY_FORWARD, plan.sink, list(plan.destinations)
        )
        answered, reply = self.network.collect_up_tree(
            MessageCategory.QUERY_REPLY, delivery
        )
        return Execution(
            forward_cost=delivery.attempted_edges,
            reply_cost=reply,
            depth_hops=delivery.tree.height(),
            answered=answered,
        )

    def fold_replies(self, plan: QueryPlan, execution: Execution) -> QueryResult:
        """Fetch + post-filter matches from the leaves whose node answered."""
        query: RangeQuery = plan.query
        canonical, leaf_ranges, leaf_nodes = plan.detail
        destinations = list(plan.destinations)
        if plan.is_local:
            events, fetched = self._fetch(list(leaf_ranges), query)
            return QueryResult(
                events=events,
                forward_cost=0,
                reply_cost=0,
                visited_nodes=tuple(destinations),
                detail=DifsQueryDetail(
                    canonical_ranges=canonical,
                    index_nodes=tuple(destinations),
                    post_filtered=fetched - len(events),
                ),
            )
        answered = execution.answered
        # A leaf answers only when its index node's reply reached the sink.
        answered_leaves = [
            leaf
            for leaf, node in zip(leaf_ranges, leaf_nodes)
            if node in answered
        ]
        events, fetched = self._fetch(answered_leaves, query)
        return resolve_result(
            events=events,
            forward_cost=execution.forward_cost,
            reply_cost=execution.reply_cost,
            visited_nodes=tuple(destinations),
            detail=DifsQueryDetail(
                canonical_ranges=canonical,
                index_nodes=tuple(destinations),
                post_filtered=fetched - len(events),
            ),
            depth_hops=execution.depth_hops,
            attempted_cells=len(leaf_ranges),
            answered_cells=len(answered_leaves),
            unreachable_cells=tuple(
                (leaf.lo, leaf.hi)
                for leaf, node in zip(leaf_ranges, leaf_nodes)
                if node not in answered
            ),
            unreachable_nodes=tuple(
                node for node in destinations if node not in answered
            ),
        )

    def query_span_attrs(self, result: QueryResult) -> dict[str, object]:
        """DIFS attributes for the query lifecycle span."""
        return {
            "post_filtered": result.detail.post_filtered,
            "matches": result.match_count,
        }

    def close(self) -> None:
        """Detach external hooks so the deployment can be reused."""
        self.insert_listeners.clear()

    def _fetch(
        self, leaf_ranges: list[_IndexRange], query: RangeQuery
    ) -> tuple[list[Event], int]:
        """Retrieve and post-filter matches held under ``leaf_ranges``."""
        events: list[Event] = []
        fetched = 0
        for leaf in leaf_ranges:
            for event in self._storage.get((leaf.lo, leaf.hi), ()):
                fetched += 1
                if query.matches(event):
                    events.append(event)
        return events, fetched

    def _leaves_under(self, node: _IndexRange) -> list[_IndexRange]:
        if node.depth == self.depth:
            return [node]
        width = self.leaf_width()
        first = round(node.lo / width)
        last = round(node.hi / width)
        return [
            _IndexRange(i * width, (i + 1) * width, self.depth)
            for i in range(first, last)
        ]

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #

    @property
    def stored_events(self) -> int:
        """Total events currently stored."""
        return self._event_count

    def storage_distribution(self) -> dict[int, int]:
        """Events per *physical node* — the hotspot metric.

        Hashed placement spreads leaf index nodes uniformly, but a skewed
        workload still piles events onto the few leaves covering the hot
        value range; this surfaces that imbalance per hosting node.
        """
        per_node: dict[int, int] = {}
        for (lo, hi), events in self._storage.items():
            if not events:
                continue
            node = self.index_node_of(_IndexRange(lo, hi, self.depth))
            per_node[node] = per_node.get(node, 0) + len(events)
        return per_node

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DifsIndex(attr={self.attribute}, b={self.branching}, "
            f"depth={self.depth}, events={self._event_count})"
        )
