"""DIFS — Distributed Index for Features in Sensornets (Greenstein et al.).

One of the predecessor DCS systems the paper positions itself against
(Section 1): a hierarchical index supporting range queries over a
*single* attribute.  Included so the library covers the full lineage —
GHT (exact match) → DIFS (1-D ranges) → DIM (k-D ranges, the baseline) →
Pool (this paper).
"""

from repro.difs.index import DifsIndex

__all__ = ["DifsIndex"]
