"""The experiment registry: one entry per paper figure, plus ablations.

Figures 1–5 are worked examples reproduced exactly by unit tests (see
DESIGN.md's experiment index); the entries here are the *simulation*
figures, each encoding the paper's Section 5.1 parameters and the claim
its reproduction is checked against.
"""

from __future__ import annotations

from repro.bench.workloads import PAPER_NETWORK_SIZES, ExperimentConfig
from repro.events.generators import EventWorkload, QueryWorkload
from repro.exceptions import ConfigurationError

__all__ = ["EXPERIMENTS", "get_experiment"]


def _exact(range_sizes: str) -> QueryWorkload:
    return QueryWorkload(
        dimensions=3,
        kind="exact",
        range_sizes=range_sizes,  # type: ignore[arg-type]
        label=f"exact/{range_sizes}",
    )


def _m_partial(m: int) -> QueryWorkload:
    return QueryWorkload(
        dimensions=3, kind="partial", unspecified=m, label=f"{m}-partial"
    )


def _one_at(n: int) -> QueryWorkload:
    """1@n-partial: dimension ``n`` (1-based, as in the paper) unspecified."""
    return QueryWorkload(
        dimensions=3,
        kind="partial",
        unspecified=(n - 1,),
        label=f"1@{n}-partial",
    )


FIG6A = ExperimentConfig(
    name="fig6a",
    title="Figure 6(a): exact-match query cost vs network size (uniform range sizes)",
    paper_claim=(
        "DIM's cost grows with network size while Pool stays nearly flat "
        "and cheaper at every size"
    ),
    network_sizes=PAPER_NETWORK_SIZES,
    query_workloads=(_exact("uniform"),),
)

FIG6B = ExperimentConfig(
    name="fig6b",
    title="Figure 6(b): exact-match query cost vs network size (exponential range sizes)",
    paper_claim=(
        "Both systems cost far less than with uniform range sizes; the "
        "ordering (Pool < DIM, DIM growing) is unchanged"
    ),
    network_sizes=PAPER_NETWORK_SIZES,
    query_workloads=(_exact("exponential"),),
)

FIG7A = ExperimentConfig(
    name="fig7a",
    title="Figure 7(a): partial-match query cost by number of unspecified dimensions",
    paper_claim=(
        "At 900 nodes DIM costs ~2.8x Pool on 1-partial and ~3.5x on "
        "2-partial queries; vaguer queries widen the gap"
    ),
    network_sizes=(900,),
    query_workloads=(_m_partial(1), _m_partial(2)),
)

FIG7B = ExperimentConfig(
    name="fig7b",
    title="Figure 7(b): 1@n-partial query cost by unspecified dimension",
    paper_claim=(
        "DIM is worst when dimension 1 is unspecified and improves toward "
        "1@3; Pool is flat across all three and 50-100% cheaper"
    ),
    network_sizes=(900,),
    query_workloads=(_one_at(1), _one_at(2), _one_at(3)),
)

# ----------------------------------------------------------------------- #
# Ablations (DESIGN.md §3, beyond the paper's figures)                    #
# ----------------------------------------------------------------------- #

ABL_INSERT = ExperimentConfig(
    name="abl-insert",
    title="Ablation: insertion cost vs network size (paper §5.2: 'conceptually the same')",
    paper_claim=(
        "Pool and DIM insertion costs are within a small constant of each "
        "other at every size (both are one GPSR unicast per event)"
    ),
    network_sizes=(300, 900, 1800, 3000),
    query_workloads=(_exact("exponential"),),
    query_count=10,
)

ABL_SPLITTER = ExperimentConfig(
    name="abl-splitter",
    title="Ablation: Pool forwarding via splitter vs direct tree from sink",
    paper_claim=(
        "Routing through the splitter costs no more than a few messages "
        "over the direct tree while enabling in-splitter aggregation"
    ),
    network_sizes=(900,),
    query_workloads=(_exact("uniform"), _m_partial(1)),
    systems=("pool", "pool-direct"),
)

ABL_SKEW = ExperimentConfig(
    name="abl-skew",
    title="Ablation: hotspot behaviour under skewed (gaussian) events",
    paper_claim=(
        "Skewed data concentrates DIM's storage on few owners; Pool with "
        "workload sharing bounds the maximum per-node load"
    ),
    network_sizes=(900,),
    event_workload=EventWorkload(dimensions=3, distribution="gaussian"),
    query_workloads=(_exact("exponential"),),
    query_count=20,
    sharing_capacity=32,
)

ABL_L = ExperimentConfig(
    name="abl-l",
    title="Ablation: Pool side length l vs query cost",
    paper_claim=(
        "Larger l spreads load over more index nodes but raises the "
        "number of relevant cells per query; l=10 is a reasonable middle"
    ),
    network_sizes=(900,),
    query_workloads=(_exact("uniform"),),
    systems=("pool-l5", "pool-l10", "pool-l15", "pool-l20"),
)

ABL_BASELINES = ExperimentConfig(
    name="abl-baselines",
    title="Ablation: Pool vs DIM vs the classical non-DCS baselines",
    paper_claim=(
        "Flooding pays O(n) per query regardless of selectivity and "
        "external storage pays a cross-network unicast per event; DCS "
        "(Pool, DIM) sits between, and Pool is the cheapest DCS"
    ),
    network_sizes=(300, 900),
    query_workloads=(_exact("exponential"),),
    query_count=30,
    systems=("pool", "dim", "flooding", "external"),
)

ABL_LINEAGE = ExperimentConfig(
    name="abl-lineage",
    title="Ablation: the DCS lineage (DIFS -> DIM -> Pool) on partial matches",
    paper_claim=(
        "Single-attribute indexes (DIFS) collapse when the query "
        "constrains a different attribute than the indexed one; DIM "
        "handles all dimensions but pays its k-d sensitivity; Pool prunes "
        "uniformly"
    ),
    network_sizes=(600,),
    query_workloads=(_one_at(1), _one_at(3)),
    query_count=30,
    systems=("pool", "dim", "difs"),
)

EXPERIMENTS: dict[str, ExperimentConfig] = {
    config.name: config
    for config in (
        FIG6A,
        FIG6B,
        FIG7A,
        FIG7B,
        ABL_INSERT,
        ABL_SPLITTER,
        ABL_SKEW,
        ABL_L,
        ABL_BASELINES,
        ABL_LINEAGE,
    )
}


def get_experiment(name: str) -> ExperimentConfig:
    """Look up an experiment by registry name."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {known}"
        ) from None
