"""Plain-text tables and JSON export for experiment results.

``pool-bench`` prints the same rows/series a figure in the paper plots;
EXPERIMENTS.md embeds these tables verbatim.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.bench.harness import ExperimentResult

__all__ = ["Table", "result_table", "ratio_table", "render_result"]


@dataclass(slots=True)
class Table:
    """A minimal ASCII table: title, headers, stringly-typed rows."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        """Append a row, stringifying every cell."""
        self.rows.append([_fmt(cell) for cell in cells])

    def render(self) -> str:
        """Render with padded columns and a separator under the header."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def result_table(result: ExperimentResult) -> Table:
    """The main per-figure table: one row per (size, workload, system)."""
    table = Table(
        title=result.title,
        headers=[
            "size",
            "workload",
            "system",
            "msgs/query",
            "±std",
            "forward",
            "reply",
            "matches",
            "insert hops",
            "depth",
        ],
    )
    for row in result.rows:
        table.add(
            row.size,
            row.workload,
            row.system,
            row.mean_cost,
            row.std_cost,
            row.mean_forward,
            row.mean_reply,
            row.mean_matches,
            row.mean_insert_hops,
            row.mean_depth_hops,
        )
    return table


def ratio_table(
    result: ExperimentResult, *, baseline: str = "dim", subject: str = "pool"
) -> Table | None:
    """Baseline/subject cost ratios per (size, workload) — the "who wins
    by what factor" view used to compare against the paper's claims.

    Returns ``None`` when either system is absent from the result.
    """
    systems = {row.system for row in result.rows}
    if baseline not in systems or subject not in systems:
        return None
    table = Table(
        title=f"{result.name}: {baseline} / {subject} cost ratio",
        headers=["size", "workload", f"{subject} msgs", f"{baseline} msgs", "ratio"],
    )
    cells = {(r.size, r.workload, r.system): r for r in result.rows}
    for row in result.rows:
        if row.system != subject:
            continue
        base = cells.get((row.size, row.workload, baseline))
        if base is None:
            continue
        ratio = base.mean_cost / row.mean_cost if row.mean_cost else float("inf")
        table.add(row.size, row.workload, row.mean_cost, base.mean_cost, f"{ratio:.2f}x")
    return table


def render_result(result: ExperimentResult) -> str:
    """Full text report: claim, measurement table, ratio table."""
    parts = [result_table(result).render()]
    if result.paper_claim:
        parts.insert(0, f"paper claim: {result.paper_claim}")
    ratios = ratio_table(result)
    if ratios is not None:
        parts.append(ratios.render())
    return "\n\n".join(parts)


def to_json(
    results: Sequence[ExperimentResult], *, include_timings: bool = True
) -> str:
    """JSON export of one or more results (for EXPERIMENTS.md tooling).

    ``include_timings=False`` omits the per-row wall-clock sub-objects,
    producing byte-identical exports across runs of the same seed.
    """
    return json.dumps(
        [r.as_dict(include_timings=include_timings) for r in results], indent=2
    )
