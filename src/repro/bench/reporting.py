"""Plain-text tables and JSON export for experiment results.

``pool-bench`` prints the same rows/series a figure in the paper plots;
EXPERIMENTS.md embeds these tables verbatim.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.bench.harness import ExperimentResult, ResultRow
from repro.obs.percentiles import latency_report

__all__ = [
    "Table",
    "result_table",
    "ratio_table",
    "render_result",
    "result_from_export",
    "err_flagged_lines",
    "render_err_sidecar",
    "telemetry_hotspot_table",
    "telemetry_energy_table",
    "telemetry_span_table",
    "telemetry_percentile_table",
    "render_telemetry",
]


@dataclass(slots=True)
class Table:
    """A minimal ASCII table: title, headers, stringly-typed rows."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        """Append a row, stringifying every cell."""
        self.rows.append([_fmt(cell) for cell in cells])

    def render(self) -> str:
        """Render with padded columns and a separator under the header."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        # Significance-aware: one decimal place would render 0.04 as
        # "0.0", erasing small-but-meaningful values (Gini coefficients,
        # energy deltas).  Below 0.1 fall back to two significant digits.
        if value != 0 and abs(value) < 0.1:
            return f"{value:.2g}"
        return f"{value:.1f}"
    return str(value)


def result_table(result: ExperimentResult) -> Table:
    """The main per-figure table: one row per (size, workload, system).

    Lossy runs grow two extra columns: the mean per-query completeness
    and the delivered-vs-attempted hop transmissions for the cell.
    Lossless runs render exactly the pre-reliability table.
    """
    lossy = any(row.attempted_messages for row in result.rows)
    headers = [
        "size",
        "workload",
        "system",
        "msgs/query",
        "±std",
        "forward",
        "reply",
        "matches",
        "insert hops",
        "depth",
    ]
    if lossy:
        headers += ["compl", "dlvr/att"]
    table = Table(title=result.title, headers=headers)
    for row in result.rows:
        cells: list[object] = [
            row.size,
            row.workload,
            row.system,
            row.mean_cost,
            row.std_cost,
            row.mean_forward,
            row.mean_reply,
            row.mean_matches,
            row.mean_insert_hops,
            row.mean_depth_hops,
        ]
        if lossy:
            cells += [
                f"{row.mean_completeness:.3f}",
                f"{row.delivered_messages}/{row.attempted_messages}",
            ]
        table.add(*cells)
    return table


def ratio_table(
    result: ExperimentResult, *, baseline: str = "dim", subject: str = "pool"
) -> Table | None:
    """Baseline/subject cost ratios per (size, workload) — the "who wins
    by what factor" view used to compare against the paper's claims.

    Returns ``None`` when either system is absent from the result.
    """
    systems = {row.system for row in result.rows}
    if baseline not in systems or subject not in systems:
        return None
    table = Table(
        title=f"{result.name}: {baseline} / {subject} cost ratio",
        headers=["size", "workload", f"{subject} msgs", f"{baseline} msgs", "ratio"],
    )
    cells = {(r.size, r.workload, r.system): r for r in result.rows}
    for row in result.rows:
        if row.system != subject:
            continue
        base = cells.get((row.size, row.workload, baseline))
        if base is None:
            continue
        ratio = base.mean_cost / row.mean_cost if row.mean_cost else float("inf")
        table.add(row.size, row.workload, row.mean_cost, base.mean_cost, f"{ratio:.2f}x")
    return table


def render_result(result: ExperimentResult) -> str:
    """Full text report: claim, measurement table, ratio table."""
    parts = [result_table(result).render()]
    if result.paper_claim:
        parts.insert(0, f"paper claim: {result.paper_claim}")
    ratios = ratio_table(result)
    if ratios is not None:
        parts.append(ratios.render())
    return "\n\n".join(parts)


def result_from_export(payload: Mapping[str, Any]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from its JSON export.

    Inverse of :meth:`ExperimentResult.as_dict` for the fields the text
    tables consume, so ``pool-bench report results/fig6a.json`` can
    re-render a committed export without re-running the experiment.
    """
    result = ExperimentResult(
        name=str(payload.get("name", "")),
        title=str(payload.get("title", "")),
        paper_claim=str(payload.get("paper_claim", "")),
    )
    rows = payload.get("rows", [])
    if not isinstance(rows, list):
        raise ValueError("result export 'rows' must be a list")
    for row in rows:
        timings = row.get("timings", {})
        result.rows.append(
            ResultRow(
                size=int(row["size"]),
                workload=str(row["workload"]),
                system=str(row["system"]),
                trials=int(row.get("trials", 0)),
                queries=int(row.get("queries", 0)),
                mean_cost=float(row.get("mean_cost", 0.0)),
                std_cost=float(row.get("std_cost", 0.0)),
                mean_forward=float(row.get("mean_forward", 0.0)),
                mean_reply=float(row.get("mean_reply", 0.0)),
                mean_matches=float(row.get("mean_matches", 0.0)),
                mean_insert_hops=float(row.get("mean_insert_hops", 0.0)),
                mean_visited_nodes=float(row.get("mean_visited_nodes", 0.0)),
                mean_depth_hops=float(row.get("mean_depth_hops", 0.0)),
                mean_completeness=float(row.get("mean_completeness", 1.0)),
                attempted_messages=int(row.get("attempted_messages", 0)),
                delivered_messages=int(row.get("delivered_messages", 0)),
                build_seconds=float(timings.get("build_seconds", 0.0)),
                insert_seconds=float(timings.get("insert_seconds", 0.0)),
                query_seconds=float(timings.get("query_seconds", 0.0)),
            )
        )
    return result


#: Case-insensitive substrings that flag a captured-stderr line as a
#: failure signal rather than routine progress chatter.
_ERR_SIGNS = ("traceback", "error", "exception", "failed", "fatal")


def err_flagged_lines(text: str) -> list[str]:
    """The lines of a captured-stderr body that look like failures.

    Shared by :func:`render_err_sidecar` (which marks them with ``!``)
    and the ``pool-bench report`` exit-code policy (a non-empty result
    turns the report's exit status non-zero so CI can't render a broken
    run green).
    """
    return [
        line
        for line in text.splitlines()
        if any(sign in line.lower() for sign in _ERR_SIGNS)
    ]


def render_err_sidecar(path: str, text: str) -> str:
    """Render a captured-stderr sidecar (``results/<name>.err``).

    Runs that redirect stderr to a ``.err`` file next to their JSON
    export used to bury crashes: a cell that died mid-grid left an empty
    or truncated row with the traceback invisible unless someone opened
    the sidecar by hand.  ``pool-bench report`` calls this to surface the
    capture — failure-looking lines (tracebacks, exceptions) are marked
    with ``!`` and counted in the heading; a clean capture collapses to
    a one-line all-clear.
    """
    lines = text.splitlines()
    flagged = err_flagged_lines(text)
    noun = "line" if len(lines) == 1 else "lines"
    if not flagged:
        heading = (
            f"captured stderr: {path} ({len(lines)} {noun}, no failure signs)"
        )
        return heading
    heading = (
        f"captured stderr: {path} ({len(lines)} {noun}, "
        f"{len(flagged)} flagged) — some cells FAILED; rows may be missing"
    )
    body = [
        ("! " if any(sign in line.lower() for sign in _ERR_SIGNS) else "  ")
        + line
        for line in lines
    ]
    return "\n".join([heading, *body])


def telemetry_hotspot_table(records: Sequence[Mapping[str, Any]]) -> Table:
    """Per-system hotspot view of a telemetry export.

    One row per (size, trial, system) record: max/mean/Gini of the radio
    load, the single hottest node, and the storage-side max/Gini — the
    load-balance comparison the paper's Section 4.2 motivates.
    """
    table = Table(
        title="per-node load hotspots (radio tx+rx / stored events)",
        headers=[
            "size",
            "trial",
            "system",
            "radio max",
            "radio mean",
            "radio gini",
            "hottest",
            "store max",
            "store gini",
        ],
    )
    for record in records:
        radio = record.get("hotspot", {}).get("radio", {})
        storage = record.get("hotspot", {}).get("storage", {})
        top = radio.get("top") or []
        hottest = f"n{top[0][0]} ({top[0][1]:g})" if top else "-"
        table.add(
            record.get("size", "-"),
            record.get("trial", "-"),
            record.get("system", "-"),
            float(radio.get("max", 0.0)),
            float(radio.get("mean", 0.0)),
            float(radio.get("gini", 0.0)),
            hottest,
            float(storage.get("max", 0.0)),
            float(storage.get("gini", 0.0)),
        )
    return table


def telemetry_energy_table(records: Sequence[Mapping[str, Any]]) -> Table:
    """Residual-energy view: min/mean remaining battery per system."""
    table = Table(
        title="residual energy (J, from the transmission ledger)",
        headers=["size", "trial", "system", "min remaining", "mean remaining"],
    )
    for record in records:
        gauges = record.get("metrics", {}).get("gauges", {})
        table.add(
            record.get("size", "-"),
            record.get("trial", "-"),
            record.get("system", "-"),
            f"{float(gauges.get('energy_min_remaining', 0.0)):.6f}",
            f"{float(gauges.get('energy_mean_remaining', 0.0)):.6f}",
        )
    return table


def telemetry_span_table(records: Sequence[Mapping[str, Any]]) -> Table:
    """Span summary: per (system, phase, span) counts across all records."""
    table = Table(
        title="query lifecycle spans (aggregated over cells)",
        headers=["system", "phase", "span", "count", "messages", "nodes"],
    )
    merged: dict[tuple[str, str, str], list[int]] = {}
    for record in records:
        for row in record.get("span_summary", ()):
            key = (
                str(row.get("system") or record.get("system", "")),
                str(row.get("phase", "")),
                str(row.get("name", "")),
            )
            bucket = merged.setdefault(key, [0, 0, 0])
            bucket[0] += int(row.get("count", 0))
            bucket[1] += int(row.get("messages", 0))
            bucket[2] += int(row.get("nodes", 0))
    for (system, phase, name) in sorted(merged):
        count, messages, nodes = merged[(system, phase, name)]
        table.add(system, phase, name, count, messages, nodes)
    return table


def telemetry_percentile_table(records: Sequence[Mapping[str, Any]]) -> Table:
    """Per-(system, size) query-latency percentiles (``--percentiles``).

    Message-cost (work-unit) percentiles are always present; the
    wall-clock columns render as ``-`` unless the capture carried span
    timings for every query in the slice, keeping deterministic numbers
    visually segregated from measured ones.
    """
    table = Table(
        title="query percentiles (work units = charged messages per query)",
        headers=[
            "system",
            "size",
            "queries",
            "wu p50",
            "wu p95",
            "wu p99",
            "sec p50",
            "sec p95",
            "sec p99",
        ],
    )
    for row in latency_report(records):
        table.add(
            row.system,
            row.size,
            row.queries,
            f"{row.wu_p50:.1f}",
            f"{row.wu_p95:.1f}",
            f"{row.wu_p99:.1f}",
            "-" if row.seconds_p50 is None else f"{row.seconds_p50:.6f}",
            "-" if row.seconds_p95 is None else f"{row.seconds_p95:.6f}",
            "-" if row.seconds_p99 is None else f"{row.seconds_p99:.6f}",
        )
    return table


def render_telemetry(
    header: Mapping[str, Any],
    records: Sequence[Mapping[str, Any]],
    *,
    percentiles: bool = False,
) -> str:
    """Full text report over one telemetry export (``pool-bench report``).

    ``percentiles=True`` (the ``--percentiles`` flag) appends the
    per-(system, size) p50/p95/p99 latency table.
    """
    experiments = sorted(
        {str(r.get("experiment", "")) for r in records if r.get("experiment")}
    )
    intro = (
        f"telemetry export: schema={header.get('schema', '?')} "
        f"records={len(records)}"
    )
    if experiments:
        intro += " experiments=" + ",".join(experiments)
    parts = [
        intro,
        telemetry_hotspot_table(records).render(),
        telemetry_energy_table(records).render(),
        telemetry_span_table(records).render(),
    ]
    if percentiles:
        parts.append(telemetry_percentile_table(records).render())
    return "\n\n".join(parts)


def to_json(
    results: Sequence[ExperimentResult], *, include_timings: bool = True
) -> str:
    """JSON export of one or more results (for EXPERIMENTS.md tooling).

    ``include_timings=False`` omits the per-row wall-clock sub-objects,
    producing byte-identical exports across runs of the same seed.
    """
    return json.dumps(
        [r.as_dict(include_timings=include_timings) for r in results], indent=2
    )
