"""The experiment runner.

For every ``(network size, trial)`` pair the runner deploys one topology
and feeds the *same* events and queries to every system under test (each
on its own :class:`~repro.network.network.Network` facade so accounting
never bleeds between systems).  Per query it records the paper's metric —
query-forward plus query-reply messages — and aggregates means over
queries and trials.

The runner is deterministic from a single seed: topology, events and
queries derive independent RNG streams via :func:`repro.rng.derive`.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable

from repro.baselines.external import ExternalStorage
from repro.baselines.flooding import LocalStorageFlooding
from repro.bench.workloads import ExperimentConfig
from repro.core.sharing import SharingPolicy
from repro.core.system import PoolSystem
from repro.dcs import DataCentricStore
from repro.difs.index import DifsIndex
from repro.dim.index import DimIndex
from repro.exceptions import ConfigurationError
from repro.network.network import Network
from repro.network.topology import Topology, deploy_uniform
from repro.rng import derive

__all__ = ["ResultRow", "ExperimentResult", "run_experiment", "build_system"]

ProgressFn = Callable[[str], None]


@dataclass(slots=True)
class ResultRow:
    """Aggregated measurements for one (size, workload, system) cell."""

    size: int
    workload: str
    system: str
    trials: int
    queries: int
    mean_cost: float
    std_cost: float
    mean_forward: float
    mean_reply: float
    mean_matches: float
    mean_insert_hops: float
    mean_visited_nodes: float
    mean_depth_hops: float = 0.0

    def as_dict(self) -> dict[str, float | int | str]:
        return {
            "size": self.size,
            "workload": self.workload,
            "system": self.system,
            "trials": self.trials,
            "queries": self.queries,
            "mean_cost": round(self.mean_cost, 2),
            "std_cost": round(self.std_cost, 2),
            "mean_forward": round(self.mean_forward, 2),
            "mean_reply": round(self.mean_reply, 2),
            "mean_matches": round(self.mean_matches, 2),
            "mean_insert_hops": round(self.mean_insert_hops, 2),
            "mean_visited_nodes": round(self.mean_visited_nodes, 2),
            "mean_depth_hops": round(self.mean_depth_hops, 2),
        }


@dataclass(slots=True)
class ExperimentResult:
    """All rows of one experiment, with series accessors for assertions."""

    name: str
    title: str
    paper_claim: str
    rows: list[ResultRow] = field(default_factory=list)

    def series(self, system: str, workload: str | None = None) -> list[tuple[int, float]]:
        """``(size, mean_cost)`` points for one system (and workload)."""
        return [
            (row.size, row.mean_cost)
            for row in self.rows
            if row.system == system
            and (workload is None or row.workload == workload)
        ]

    def by_workload(self, system: str, size: int) -> list[tuple[str, float]]:
        """``(workload, mean_cost)`` categories at a fixed size."""
        return [
            (row.workload, row.mean_cost)
            for row in self.rows
            if row.system == system and row.size == size
        ]

    def cell(self, system: str, size: int, workload: str) -> ResultRow:
        for row in self.rows:
            if (
                row.system == system
                and row.size == size
                and row.workload == workload
            ):
                return row
        raise KeyError(f"no row for ({system}, {size}, {workload!r})")

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "rows": [row.as_dict() for row in self.rows],
        }


def build_system(
    name: str, network: Network, config: ExperimentConfig, seed: int
) -> DataCentricStore:
    """Instantiate a system under test by registry name.

    Names: ``"pool"`` (paper configuration), ``"pool-direct"`` (forwarding
    tree rooted at the sink instead of the splitter — ablation),
    ``"pool-l<N>"`` (side length override, e.g. ``pool-l20``), ``"dim"``
    (the paper's baseline), ``"difs"`` (single-attribute predecessor),
    ``"flooding"`` and ``"external"`` (the classical non-DCS extremes).
    """
    if name == "dim":
        return DimIndex(network, config.dimensions)
    if name == "difs":
        return DifsIndex(network, config.dimensions)
    if name == "flooding":
        return LocalStorageFlooding(network, config.dimensions)
    if name == "external":
        return ExternalStorage(network, config.dimensions)
    if name == "pool" or name.startswith("pool-"):
        side_length = config.side_length
        route_via_splitter = config.route_via_splitter
        if name == "pool-direct":
            route_via_splitter = False
        elif name.startswith("pool-l"):
            try:
                side_length = int(name[len("pool-l") :])
            except ValueError:
                raise ConfigurationError(
                    f"bad side-length system name {name!r}"
                ) from None
        elif name != "pool":
            raise ConfigurationError(f"unknown system under test {name!r}")
        sharing = (
            SharingPolicy(enabled=True, capacity=config.sharing_capacity)
            if config.sharing_capacity is not None
            else SharingPolicy()
        )
        return PoolSystem(
            network,
            config.dimensions,
            cell_size=config.cell_size,
            side_length=side_length,
            seed=derive(seed, "pivots"),
            sharing=sharing,
            route_via_splitter=route_via_splitter,
        )
    raise ConfigurationError(f"unknown system under test {name!r}")


def _sink_node(topology: Topology) -> int:
    """The query sink: the node nearest the field center (base station)."""
    return topology.closest_node(topology.field.center)


@dataclass(slots=True)
class _CellSamples:
    """Per-query samples accumulated across trials for one result cell."""

    costs: list[float] = field(default_factory=list)
    forwards: list[float] = field(default_factory=list)
    replies: list[float] = field(default_factory=list)
    matches: list[float] = field(default_factory=list)
    visited: list[float] = field(default_factory=list)
    insert_hops: list[float] = field(default_factory=list)
    depths: list[float] = field(default_factory=list)


def run_experiment(
    config: ExperimentConfig,
    *,
    seed: int = 0,
    progress: ProgressFn | None = None,
) -> ExperimentResult:
    """Run ``config`` and return aggregated rows.

    Deterministic for a fixed ``seed``.  ``progress`` (if given) receives
    one human-readable line per (size, trial, system) step.
    """
    samples: dict[tuple[int, str, str], _CellSamples] = {}
    for size in config.network_sizes:
        for trial in range(config.trials):
            topology = deploy_uniform(
                size,
                radio_range=config.radio_range,
                target_degree=config.target_degree,
                seed=derive(seed, "topology", size, trial),
            )
            sink = _sink_node(topology)
            events = config.event_workload.generate(
                config.events_per_node * size,
                seed=derive(seed, "events", size, trial),
                sources=list(topology),
            )
            query_sets = [
                (
                    workload.describe(),
                    workload.generate(
                        config.query_count,
                        seed=derive(seed, "queries", size, trial, wi),
                    ),
                )
                for wi, workload in enumerate(config.query_workloads)
            ]
            for system_name in config.systems:
                if progress is not None:
                    progress(
                        f"[{config.name}] n={size} trial={trial + 1}/"
                        f"{config.trials} system={system_name}"
                    )
                network = Network(topology)
                system = build_system(system_name, network, config, seed)
                insert_hops = [
                    system.insert(event).hops for event in events
                ]
                mean_insert = (
                    sum(insert_hops) / len(insert_hops) if insert_hops else 0.0
                )
                for workload_label, queries in query_sets:
                    cell = samples.setdefault(
                        (size, workload_label, system_name), _CellSamples()
                    )
                    cell.insert_hops.append(mean_insert)
                    for query in queries:
                        result = system.query(sink, query)
                        cell.costs.append(result.total_cost)
                        cell.forwards.append(result.forward_cost)
                        cell.replies.append(result.reply_cost)
                        cell.matches.append(result.match_count)
                        cell.visited.append(len(result.visited_nodes))
                        cell.depths.append(result.depth_hops)
    rows = []
    for size in config.network_sizes:
        for workload in config.query_workloads:
            label = workload.describe()
            for system_name in config.systems:
                cell = samples[(size, label, system_name)]
                rows.append(
                    ResultRow(
                        size=size,
                        workload=label,
                        system=system_name,
                        trials=config.trials,
                        queries=len(cell.costs),
                        mean_cost=statistics.fmean(cell.costs),
                        std_cost=(
                            statistics.pstdev(cell.costs)
                            if len(cell.costs) > 1
                            else 0.0
                        ),
                        mean_forward=statistics.fmean(cell.forwards),
                        mean_reply=statistics.fmean(cell.replies),
                        mean_matches=statistics.fmean(cell.matches),
                        mean_insert_hops=statistics.fmean(cell.insert_hops),
                        mean_visited_nodes=statistics.fmean(cell.visited),
                        mean_depth_hops=statistics.fmean(cell.depths),
                    )
                )
    return ExperimentResult(
        name=config.name,
        title=config.title,
        paper_claim=config.paper_claim,
        rows=rows,
    )
