"""The experiment runner.

For every ``(network size, trial)`` pair the runner builds one shared
:class:`~repro.network.deployment.Deployment` — topology, planarization
and GPSR route cache are constructed exactly once per cell — and feeds
the *same* events and queries to every system under test.  Each system
runs on its own scoped :class:`~repro.network.network.Network` facade
over that deployment, so accounting never bleeds between systems while
the expensive routing state warms up across all of them.  Per query it
records the paper's metric — query-forward plus query-reply messages —
and aggregates means over queries and trials.

Cells are independent, which is what makes the grid embarrassingly
parallel: ``run_experiment(..., jobs=N)`` fans the ``(size, trial)``
cells out over a :class:`concurrent.futures.ProcessPoolExecutor` and
merges the per-cell samples back in deterministic cell order, so a
parallel run emits exactly the rows of a serial run.

The runner is deterministic from a single seed: topology, events and
queries derive independent RNG streams via :func:`repro.rng.derive`, and
the derivation keys include ``(size, trial)`` so a cell's artifacts never
depend on which worker (or in which order) it executes.
"""

from __future__ import annotations

import statistics
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable

from repro.baselines.external import ExternalStorage
from repro.baselines.flooding import LocalStorageFlooding
from repro.bench.workloads import ExperimentConfig
from repro.core.sharing import SharingPolicy
from repro.core.system import PoolSystem
from repro.dcs import DataCentricStore
from repro.difs.index import DifsIndex
from repro.dim.index import DimIndex
from repro.exceptions import ConfigurationError
from repro.network.deployment import Deployment
from repro.network.network import Network
from repro.network.reliability import ArqPolicy, LossModel, ReliabilityLayer
from repro.network.topology import Topology
from repro.obs.recorder import FlightRecorder
from repro.rng import derive
from repro.telemetry.export import collect_system_record
from repro.telemetry.spans import SpanRecorder

__all__ = ["ResultRow", "ExperimentResult", "run_experiment", "build_system"]

ProgressFn = Callable[[str], None]


@dataclass(slots=True)
class ResultRow:
    """Aggregated measurements for one (size, workload, system) cell."""

    size: int
    workload: str
    system: str
    trials: int
    queries: int
    mean_cost: float
    std_cost: float
    mean_forward: float
    mean_reply: float
    mean_matches: float
    mean_insert_hops: float
    mean_visited_nodes: float
    mean_depth_hops: float = 0.0
    # Reliability view (populated only when the run used a lossy channel):
    # mean per-query completeness and delivered-vs-attempted hop
    # transmissions summed over the cell's queries.
    mean_completeness: float = 1.0
    attempted_messages: int = 0
    delivered_messages: int = 0
    # Wall-clock trajectory (seconds, means over trials).  Not part of
    # the deterministic row identity: two runs of the same seed agree on
    # every field above but naturally differ here.
    build_seconds: float = 0.0
    insert_seconds: float = 0.0
    query_seconds: float = 0.0

    def as_dict(
        self, *, include_timings: bool = True
    ) -> dict[str, float | int | str | dict[str, float]]:
        """JSON-ready view of the row.

        ``include_timings=False`` drops the wall-clock sub-object,
        leaving exactly the seed-deterministic fields — the form the
        serial-vs-parallel equivalence tests compare.
        """
        payload: dict[str, float | int | str | dict[str, float]] = {
            "size": self.size,
            "workload": self.workload,
            "system": self.system,
            "trials": self.trials,
            "queries": self.queries,
            "mean_cost": round(self.mean_cost, 2),
            "std_cost": round(self.std_cost, 2),
            "mean_forward": round(self.mean_forward, 2),
            "mean_reply": round(self.mean_reply, 2),
            "mean_matches": round(self.mean_matches, 2),
            "mean_insert_hops": round(self.mean_insert_hops, 2),
            "mean_visited_nodes": round(self.mean_visited_nodes, 2),
            "mean_depth_hops": round(self.mean_depth_hops, 2),
        }
        if self.attempted_messages:
            # Only lossy runs carry the reliability fields, so lossless
            # exports stay byte-identical to pre-reliability baselines.
            payload["mean_completeness"] = round(self.mean_completeness, 6)
            payload["attempted_messages"] = self.attempted_messages
            payload["delivered_messages"] = self.delivered_messages
        if include_timings:
            payload["timings"] = {
                "build_seconds": round(self.build_seconds, 6),
                "insert_seconds": round(self.insert_seconds, 6),
                "query_seconds": round(self.query_seconds, 6),
            }
        return payload


@dataclass(slots=True)
class ExperimentResult:
    """All rows of one experiment, with series accessors for assertions."""

    name: str
    title: str
    paper_claim: str
    rows: list[ResultRow] = field(default_factory=list)
    #: Telemetry records (one per (size, trial, system) cell-slice, in
    #: fixed cell order) when the run was launched with ``telemetry=True``;
    #: empty otherwise.  Export with
    #: :func:`repro.telemetry.export.write_telemetry_jsonl`.
    telemetry: list[dict[str, Any]] = field(default_factory=list)

    def series(self, system: str, workload: str | None = None) -> list[tuple[int, float]]:
        """``(size, mean_cost)`` points for one system (and workload)."""
        return [
            (row.size, row.mean_cost)
            for row in self.rows
            if row.system == system
            and (workload is None or row.workload == workload)
        ]

    def by_workload(self, system: str, size: int) -> list[tuple[str, float]]:
        """``(workload, mean_cost)`` categories at a fixed size."""
        return [
            (row.workload, row.mean_cost)
            for row in self.rows
            if row.system == system and row.size == size
        ]

    def cell(self, system: str, size: int, workload: str) -> ResultRow:
        for row in self.rows:
            if (
                row.system == system
                and row.size == size
                and row.workload == workload
            ):
                return row
        raise KeyError(f"no row for ({system}, {size}, {workload!r})")

    def as_dict(self, *, include_timings: bool = True) -> dict[str, object]:
        return {
            "name": self.name,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "rows": [
                row.as_dict(include_timings=include_timings) for row in self.rows
            ],
        }


def build_system(
    name: str, network: Network, config: ExperimentConfig, seed: int
) -> DataCentricStore:
    """Instantiate a system under test by registry name.

    Names: ``"pool"`` (paper configuration), ``"pool-direct"`` (forwarding
    tree rooted at the sink instead of the splitter — ablation),
    ``"pool-l<N>"`` (side length override, e.g. ``pool-l20``), ``"dim"``
    (the paper's baseline), ``"difs"`` (single-attribute predecessor),
    ``"flooding"`` and ``"external"`` (the classical non-DCS extremes).

    Every system scopes its own ledger off ``network`` at construction,
    so one facade (over one shared deployment) can host all of them.
    """
    if name == "dim":
        return DimIndex(network, config.dimensions)
    if name == "difs":
        return DifsIndex(network, config.dimensions)
    if name == "flooding":
        return LocalStorageFlooding(network, config.dimensions)
    if name == "external":
        return ExternalStorage(network, config.dimensions)
    if name == "pool" or name.startswith("pool-"):
        side_length = config.side_length
        route_via_splitter = config.route_via_splitter
        if name == "pool-direct":
            route_via_splitter = False
        elif name.startswith("pool-l"):
            try:
                side_length = int(name[len("pool-l") :])
            except ValueError:
                raise ConfigurationError(
                    f"bad side-length system name {name!r}"
                ) from None
        elif name != "pool":
            raise ConfigurationError(f"unknown system under test {name!r}")
        sharing = (
            SharingPolicy(enabled=True, capacity=config.sharing_capacity)
            if config.sharing_capacity is not None
            else SharingPolicy()
        )
        return PoolSystem(
            network,
            config.dimensions,
            cell_size=config.cell_size,
            side_length=side_length,
            seed=derive(seed, "pivots"),
            sharing=sharing,
            route_via_splitter=route_via_splitter,
        )
    raise ConfigurationError(f"unknown system under test {name!r}")


def _sink_node(topology: Topology) -> int:
    """The query sink: the node nearest the field center (base station)."""
    return topology.closest_node(topology.field.center)


def _make_reliability(
    config: ExperimentConfig, seed: int, size: int, trial: int
) -> ReliabilityLayer | None:
    """One reliability layer per system run, or ``None`` on perfect links.

    The loss stream derives from ``(seed, size, trial)`` — not from the
    system name — so every system under test faces the *same* channel
    conditions, and the layer is rebuilt per system so counters and
    fault-plan deaths never bleed between systems.
    """
    if config.loss_rate == 0.0 and config.fault_plan is None:
        return None
    return ReliabilityLayer(
        loss=LossModel(config.loss_rate, seed=derive(seed, "loss", size, trial)),
        arq=ArqPolicy(retry_limit=config.retry_limit),
        fault_plan=config.fault_plan,
    )


@dataclass(slots=True)
class _CellSamples:
    """Per-query samples accumulated across trials for one result cell."""

    costs: list[float] = field(default_factory=list)
    forwards: list[float] = field(default_factory=list)
    replies: list[float] = field(default_factory=list)
    matches: list[float] = field(default_factory=list)
    visited: list[float] = field(default_factory=list)
    insert_hops: list[float] = field(default_factory=list)
    depths: list[float] = field(default_factory=list)
    completeness: list[float] = field(default_factory=list)
    attempted: list[int] = field(default_factory=list)
    delivered: list[int] = field(default_factory=list)
    build_s: list[float] = field(default_factory=list)
    insert_s: list[float] = field(default_factory=list)
    query_s: list[float] = field(default_factory=list)

    def merge(self, other: "_CellSamples") -> None:
        """Append ``other``'s samples (one grid cell) onto this one."""
        self.costs.extend(other.costs)
        self.forwards.extend(other.forwards)
        self.replies.extend(other.replies)
        self.matches.extend(other.matches)
        self.visited.extend(other.visited)
        self.insert_hops.extend(other.insert_hops)
        self.depths.extend(other.depths)
        self.completeness.extend(other.completeness)
        self.attempted.extend(other.attempted)
        self.delivered.extend(other.delivered)
        self.build_s.extend(other.build_s)
        self.insert_s.extend(other.insert_s)
        self.query_s.extend(other.query_s)


# Per-(size, trial) grid-cell output: samples keyed by (workload label,
# system name) plus the cell's telemetry records.
_CellResult = tuple[dict[tuple[str, str], "_CellSamples"], list[dict[str, Any]]]


def _run_cell(
    config: ExperimentConfig,
    seed: int,
    size: int,
    trial: int,
    progress: ProgressFn | None = None,
    *,
    telemetry: bool = False,
) -> _CellResult:
    """Run one (size, trial) grid cell: every system, every workload.

    One deployment is built here and shared by all systems through scoped
    facades.  Top-level so the process pool can pickle it; all RNG
    streams derive from ``(seed, size, trial)``, making the result
    independent of which worker runs the cell.

    With ``telemetry=True``, each system gets a
    :class:`~repro.telemetry.spans.SpanRecorder` on its facade and the
    second element carries one JSON-ready record per system (in
    ``config.systems`` order — the fixed order the harness merges in).
    """
    build_started = perf_counter()
    deployment = Deployment.deploy(
        size,
        radio_range=config.radio_range,
        target_degree=config.target_degree,
        seed=derive(seed, "topology", size, trial),
    )
    if config.shards > 1:
        # Same topology object, sharded router: the deployment draw above
        # is untouched, so every downstream artifact (sink, events,
        # queries, paths) is byte-identical to the shards=1 run.
        deployment = deployment.shard(
            config.shards, workers=config.shard_workers
        )
    build_seconds = perf_counter() - build_started
    try:
        return _run_cell_systems(
            config,
            seed,
            size,
            trial,
            progress,
            telemetry=telemetry,
            deployment=deployment,
            build_seconds=build_seconds,
        )
    finally:
        closer = getattr(deployment, "close", None)
        if closer is not None:
            closer()


def _run_cell_systems(
    config: ExperimentConfig,
    seed: int,
    size: int,
    trial: int,
    progress: ProgressFn | None = None,
    *,
    telemetry: bool,
    deployment: Deployment,
    build_seconds: float,
) -> _CellResult:
    """The body of :func:`_run_cell` once the deployment exists."""
    root = Network(deployment=deployment)
    sink = _sink_node(deployment.topology)
    events = config.event_workload.generate(
        config.events_per_node * size,
        seed=derive(seed, "events", size, trial),
        sources=list(deployment.topology),
    )
    query_sets = [
        (
            workload.describe(),
            workload.generate(
                config.query_count,
                seed=derive(seed, "queries", size, trial, wi),
            ),
        )
        for wi, workload in enumerate(config.query_workloads)
    ]
    samples: dict[tuple[str, str], _CellSamples] = {}
    records: list[dict[str, Any]] = []
    for system_name in config.systems:
        if progress is not None:
            progress(
                f"[{config.name}] n={size} trial={trial + 1}/"
                f"{config.trials} system={system_name}"
            )
        facade = root.scope(system_name)
        recorder: SpanRecorder | None = None
        if telemetry:
            recorder = SpanRecorder(label=system_name)
            # Set before the system scopes its own ledger off the facade
            # so the recorder propagates to every scope below.
            facade.telemetry = recorder
        if telemetry and config.flight_recorder:
            # Same placement rule; one ring per system so packet ids are
            # a per-system sequence (the replay CLI's key).
            facade.flight_recorder = FlightRecorder(
                config.flight_recorder_capacity
            )
        reliability = _make_reliability(config, seed, size, trial)
        if reliability is not None:
            # Same placement rule as the recorder: the layer must be on
            # the facade before the system scopes its own network off it.
            reliability.bind(deployment.topology)
            facade.reliability = reliability
        system = build_system(system_name, facade, config, seed)
        insert_started = perf_counter()
        insert_hops = [system.insert(event).hops for event in events]
        insert_seconds = perf_counter() - insert_started
        mean_insert = (
            sum(insert_hops) / len(insert_hops) if insert_hops else 0.0
        )
        for workload_label, queries in query_sets:
            cell = samples.setdefault(
                (workload_label, system_name), _CellSamples()
            )
            cell.insert_hops.append(mean_insert)
            cell.build_s.append(build_seconds)
            cell.insert_s.append(insert_seconds)
            query_started = perf_counter()
            for query in queries:
                attempted_before = delivered_before = 0
                if reliability is not None:
                    attempted_before = reliability.attempted
                    delivered_before = reliability.delivered
                result = system.query(sink, query)
                cell.costs.append(result.total_cost)
                cell.forwards.append(result.forward_cost)
                cell.replies.append(result.reply_cost)
                cell.matches.append(result.match_count)
                cell.visited.append(len(result.visited_nodes))
                cell.depths.append(result.depth_hops)
                if reliability is not None:
                    cell.completeness.append(result.completeness)
                    cell.attempted.append(
                        reliability.attempted - attempted_before
                    )
                    cell.delivered.append(
                        reliability.delivered - delivered_before
                    )
            cell.query_s.append(perf_counter() - query_started)
        if telemetry:
            records.append(
                collect_system_record(
                    experiment=config.name,
                    size=size,
                    trial=trial,
                    system=system_name,
                    network=facade,
                    store=system,
                    recorder=recorder,
                )
            )
        # Teardown: detach insert listeners (continuous-query services,
        # serve caches) so they cannot leak across trials when the
        # deployment is reused.
        closer = getattr(system, "close", None)
        if closer is not None:
            closer()
    return samples, records


def _run_cell_task(
    args: tuple[ExperimentConfig, int, int, int, bool],
) -> _CellResult:
    """Process-pool entry point (single-argument for ``submit``)."""
    config, seed, size, trial, telemetry = args
    return _run_cell(config, seed, size, trial, telemetry=telemetry)


def run_experiment(
    config: ExperimentConfig,
    *,
    seed: int = 0,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    telemetry: bool = False,
) -> ExperimentResult:
    """Run ``config`` and return aggregated rows.

    Deterministic for a fixed ``seed`` *regardless of* ``jobs``: the
    (size, trial) cells are independent, and the merge happens in fixed
    cell order, so ``jobs=4`` emits exactly the rows of ``jobs=1`` (only
    the wall-clock timing fields differ).  ``progress`` (if given)
    receives one human-readable line per (size, trial, system) step in
    serial mode, or one per completed cell in parallel mode.

    With ``telemetry=True`` the result additionally carries one telemetry
    record per (size, trial, system) in
    :attr:`ExperimentResult.telemetry`.  Workers return the records as
    plain dicts with their samples and the merge below walks cells in the
    same fixed order as the rows, so the telemetry export is also
    byte-identical across ``jobs`` values.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    cells = [
        (size, trial)
        for size in config.network_sizes
        for trial in range(config.trials)
    ]
    if jobs == 1:
        cell_results = [
            _run_cell(config, seed, size, trial, progress, telemetry=telemetry)
            for size, trial in cells
        ]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(
                    _run_cell_task, (config, seed, size, trial, telemetry)
                )
                for size, trial in cells
            ]
            cell_results: list[_CellResult] = []
            for (size, trial), future in zip(cells, futures):
                cell_results.append(future.result())
                if progress is not None:
                    progress(
                        f"[{config.name}] n={size} trial={trial + 1}/"
                        f"{config.trials} done"
                    )
    samples: dict[tuple[int, str, str], _CellSamples] = {}
    telemetry_records: list[dict[str, Any]] = []
    for (size, _trial), (cell_result, cell_records) in zip(cells, cell_results):
        telemetry_records.extend(cell_records)
        for (workload_label, system_name), cell in cell_result.items():
            samples.setdefault(
                (size, workload_label, system_name), _CellSamples()
            ).merge(cell)
    rows: list[ResultRow] = []
    for size in config.network_sizes:
        for workload in config.query_workloads:
            label = workload.describe()
            for system_name in config.systems:
                cell = samples[(size, label, system_name)]
                rows.append(
                    ResultRow(
                        size=size,
                        workload=label,
                        system=system_name,
                        trials=config.trials,
                        queries=len(cell.costs),
                        mean_cost=statistics.fmean(cell.costs),
                        std_cost=(
                            statistics.pstdev(cell.costs)
                            if len(cell.costs) > 1
                            else 0.0
                        ),
                        mean_forward=statistics.fmean(cell.forwards),
                        mean_reply=statistics.fmean(cell.replies),
                        mean_matches=statistics.fmean(cell.matches),
                        mean_insert_hops=statistics.fmean(cell.insert_hops),
                        mean_visited_nodes=statistics.fmean(cell.visited),
                        mean_depth_hops=statistics.fmean(cell.depths),
                        mean_completeness=(
                            statistics.fmean(cell.completeness)
                            if cell.completeness
                            else 1.0
                        ),
                        attempted_messages=sum(cell.attempted),
                        delivered_messages=sum(cell.delivered),
                        build_seconds=statistics.fmean(cell.build_s),
                        insert_seconds=statistics.fmean(cell.insert_s),
                        query_seconds=statistics.fmean(cell.query_s),
                    )
                )
    return ExperimentResult(
        name=config.name,
        title=config.title,
        paper_claim=config.paper_claim,
        rows=rows,
        telemetry=telemetry_records,
    )
