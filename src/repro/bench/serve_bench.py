"""``pool-bench serve`` — the online serving-layer benchmark.

For each system under test, one shared deployment hosts two service
configurations over independent scoped ledgers:

* **cached** — plan/result cache attached, batch coalescing enabled;
* **control** — no cache, no coalescing; every request plans and
  executes in full.

Both replay the *same* deterministic schedule against identically loaded
stores, so the messages-saved column is a measured ledger difference, not
an estimate.  Everything derives from the seed; two runs of the same
parameters produce byte-identical reports and telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.bench.harness import build_system
from repro.bench.workloads import ExperimentConfig
from repro.events.generators import EventWorkload, QueryWorkload
from repro.network.deployment import Deployment
from repro.network.network import Network
from repro.network.reliability import (
    ArqPolicy,
    FaultPlan,
    LossModel,
    ReliabilityLayer,
)
from repro.rng import derive
from repro.serve import (
    SHED_POLICIES,
    AdmissionPolicy,
    BreakerPolicy,
    ChaosSpec,
    PlanResultCache,
    QueryService,
    RetryPolicy,
    ServeReport,
    build_schedule,
    generate_fault_plan,
)
from repro.serve.admission import SHED_DROP_TAIL
from repro.telemetry.export import collect_system_record
from repro.telemetry.spans import SpanRecorder

__all__ = [
    "ServeRunRow",
    "ServeRunResult",
    "run_serve",
    "run_chaos_baseline",
    "SERVE_SYSTEMS",
]

#: Range-query systems the serving layer fronts (GHT is a key/value
#: store — no range plans to cache).
SERVE_SYSTEMS: tuple[str, ...] = ("pool", "dim", "difs", "flooding", "external")

ProgressFn = Callable[[str], None]


def _serve_sinks(topology: Any, count: int) -> tuple[int, ...]:
    """``count`` geographically spread request sinks (deduped, in order).

    The base-station sink (field center) comes first, then the four
    quadrant centers — pure geometry, so the sink set is a deterministic
    function of the topology alone.  Spreading requests over several
    sinks matters for the external baseline in particular: from the
    warehouse node itself a query is free, which would make the control
    run trivially unbeatable.
    """
    field = topology.field
    xs = (field.x_min + field.width * 0.25, field.x_min + field.width * 0.75)
    ys = (field.y_min + field.height * 0.25, field.y_min + field.height * 0.75)
    candidates = [
        tuple(field.center),
        (xs[0], ys[0]),
        (xs[1], ys[1]),
        (xs[0], ys[1]),
        (xs[1], ys[0]),
    ]
    sinks: list[int] = []
    for point in candidates:
        node = topology.closest_node(point)
        if node not in sinks:
            sinks.append(node)
        if len(sinks) == count:
            break
    return tuple(sinks)


@dataclass(slots=True)
class ServeRunRow:
    """One system's cached run beside its uncached control run."""

    system: str
    cached: ServeReport
    control: ServeReport

    @property
    def messages_saved(self) -> int:
        """Measured ledger difference: control minus cached."""
        return self.control.messages_total - self.cached.messages_total

    def as_dict(self) -> dict[str, Any]:
        return {
            "system": self.system,
            "messages_saved": self.messages_saved,
            "cached": self.cached.as_dict(),
            "control": self.control.as_dict(include_requests=False),
        }


@dataclass(slots=True)
class ServeRunResult:
    """Everything one ``pool-bench serve`` invocation produced."""

    seed: int
    size: int
    requests: int
    duration: float
    pattern: str
    rows: list[ServeRunRow] = field(default_factory=list)
    telemetry: list[dict[str, Any]] = field(default_factory=list)
    #: Channel/fault conditions (loss rate, ARQ, fault-plan and chaos
    #: summaries); ``None`` on a clean run, which keeps the artifact on
    #: the serve-run/1 schema byte-identically.
    conditions: dict[str, Any] | None = None

    @property
    def robust(self) -> bool:
        """Whether any overload/fault machinery was active this run."""
        if self.conditions is not None:
            return True
        return any(
            row.cached.robust or row.control.robust for row in self.rows
        )

    def as_dict(self) -> dict[str, Any]:
        """The SLO report artifact (deterministic; diffable in CI)."""
        payload: dict[str, Any] = {
            "schema": "serve-run/2" if self.robust else "serve-run/1",
            "seed": self.seed,
            "size": self.size,
            "requests": self.requests,
            "duration_s": round(self.duration, 6),
            "pattern": self.pattern,
            "rows": [row.as_dict() for row in self.rows],
        }
        if self.robust:
            payload["conditions"] = self.conditions
        return payload


def run_serve(
    *,
    seed: int = 0,
    size: int = 150,
    dimensions: int = 3,
    events_per_node: int = 2,
    systems: Sequence[str] = SERVE_SYSTEMS,
    duration: float = 60.0,
    rate: float = 2.0,
    pattern: str = "poisson",
    repeat_fraction: float = 0.75,
    unique_queries: int = 8,
    burst_size: int = 4,
    num_sinks: int = 3,
    batch_window: float = 0.2,
    hop_latency: float = 0.01,
    slo_target_s: float = 0.5,
    loss_rate: float = 0.0,
    retry_limit: int = 3,
    fault_plan: FaultPlan | None = None,
    chaos_deaths: int = 0,
    chaos_degradations: int = 0,
    queue_capacity: int | None = None,
    shed_policy: str = SHED_DROP_TAIL,
    deadline_s: float | None = None,
    retry_budget: int = 0,
    breaker_threshold: int | None = None,
    breaker_cooldown_s: float = 5.0,
    telemetry: bool = False,
    progress: ProgressFn | None = None,
) -> ServeRunResult:
    """Run the serving-layer benchmark; see the module docstring.

    The deployment, event load and schedule are shared across all
    systems and both configurations — only the serving policy differs.

    The robustness knobs layer chaos and overload on top: ``loss_rate``/
    ``retry_limit``/``fault_plan`` make the *serving* channel lossy
    (event loading stays lossless, so every mode folds over identical
    stores), ``chaos_deaths``/``chaos_degradations`` generate a
    deterministic :class:`~repro.serve.chaos.ChaosSpec` fault plan on top
    of any explicit one, and ``queue_capacity``/``shed_policy``/
    ``deadline_s``/``retry_budget``/``breaker_threshold`` configure the
    service's admission, retry and circuit-breaker policies.  All knobs
    at their defaults reproduce the pre-robustness output byte for byte.
    """
    config = ExperimentConfig(
        name="serve",
        title="online serving layer",
        network_sizes=(size,),
        dimensions=dimensions,
        events_per_node=events_per_node,
        event_workload=EventWorkload(dimensions=dimensions),
        query_workloads=(
            QueryWorkload(dimensions=dimensions, kind="exact", range_sizes="uniform"),
        ),
        query_count=1,
        trials=1,
        systems=tuple(systems),
    )
    deployment = Deployment.deploy(
        size,
        radio_range=config.radio_range,
        target_degree=config.target_degree,
        seed=derive(seed, "serve-topology", size),
    )
    try:
        return _run_serve_systems(
            config,
            deployment,
            seed=seed,
            duration=duration,
            rate=rate,
            pattern=pattern,
            repeat_fraction=repeat_fraction,
            unique_queries=unique_queries,
            burst_size=burst_size,
            num_sinks=num_sinks,
            batch_window=batch_window,
            hop_latency=hop_latency,
            slo_target_s=slo_target_s,
            loss_rate=loss_rate,
            retry_limit=retry_limit,
            fault_plan=fault_plan,
            chaos_deaths=chaos_deaths,
            chaos_degradations=chaos_degradations,
            queue_capacity=queue_capacity,
            shed_policy=shed_policy,
            deadline_s=deadline_s,
            retry_budget=retry_budget,
            breaker_threshold=breaker_threshold,
            breaker_cooldown_s=breaker_cooldown_s,
            telemetry=telemetry,
            progress=progress,
        )
    finally:
        closer = getattr(deployment, "close", None)
        if closer is not None:
            closer()


def _run_serve_systems(
    config: ExperimentConfig,
    deployment: Deployment,
    *,
    seed: int,
    duration: float,
    rate: float,
    pattern: str,
    repeat_fraction: float,
    unique_queries: int,
    burst_size: int,
    num_sinks: int,
    batch_window: float,
    hop_latency: float,
    slo_target_s: float,
    loss_rate: float,
    retry_limit: int,
    fault_plan: FaultPlan | None,
    chaos_deaths: int,
    chaos_degradations: int,
    queue_capacity: int | None,
    shed_policy: str,
    deadline_s: float | None,
    retry_budget: int,
    breaker_threshold: int | None,
    breaker_cooldown_s: float,
    telemetry: bool,
    progress: ProgressFn | None,
) -> ServeRunResult:
    size = config.network_sizes[0]
    root = Network(deployment=deployment)
    sinks = _serve_sinks(deployment.topology, num_sinks)
    admission = (
        AdmissionPolicy(
            capacity=queue_capacity,
            shed_policy=shed_policy,
            deadline_s=deadline_s,
        )
        if queue_capacity is not None or deadline_s is not None
        else None
    )
    retry = RetryPolicy(budget=retry_budget) if retry_budget > 0 else None
    breaker = (
        BreakerPolicy(threshold=breaker_threshold, cooldown_s=breaker_cooldown_s)
        if breaker_threshold is not None
        else None
    )
    plan = fault_plan
    chaos_summary: dict[str, Any] | None = None
    if chaos_deaths or chaos_degradations:
        spec = ChaosSpec(deaths=chaos_deaths, degradations=chaos_degradations)
        generated = generate_fault_plan(
            spec,
            nodes=list(deployment.topology),
            seed=derive(seed, "serve-chaos", size),
            protect=sinks,
        )
        chaos_summary = spec.as_dict()
        if plan is None:
            plan = generated
        else:
            plan = FaultPlan(
                deaths=plan.deaths + generated.deaths,
                degradations=plan.degradations + generated.degradations,
                drops=plan.drops,
            )
    lossy = loss_rate > 0.0 or plan is not None
    events = config.event_workload.generate(
        config.events_per_node * size,
        seed=derive(seed, "serve-events", size),
        sources=list(deployment.topology),
    )
    schedule = build_schedule(
        workload=config.query_workloads[0],
        sinks=sinks,
        duration=duration,
        rate=rate,
        seed=derive(seed, "serve-schedule", size),
        pattern=pattern,
        repeat_fraction=repeat_fraction,
        unique_queries=unique_queries,
        burst_size=burst_size,
    )
    result = ServeRunResult(
        seed=seed,
        size=size,
        requests=len(schedule),
        duration=duration,
        pattern=pattern,
    )
    if lossy:
        result.conditions = {
            "loss_rate": loss_rate,
            "retry_limit": retry_limit,
            "fault_plan": plan.as_dict() if plan is not None else None,
            "chaos": chaos_summary,
        }
    for system_name in config.systems:
        reports: dict[str, ServeReport] = {}
        for mode in ("cached", "control"):
            if progress is not None:
                progress(
                    f"[serve] n={size} system={system_name} mode={mode} "
                    f"requests={len(schedule)}"
                )
            facade = root.scope(f"{system_name}:{mode}")
            recorder: SpanRecorder | None = None
            if telemetry:
                recorder = SpanRecorder(label=f"{system_name}:{mode}")
                # Set before the system scopes its own ledger off the
                # facade so the recorder propagates to scopes below.
                facade.telemetry = recorder
            system = build_system(system_name, facade, config, seed)
            for event in events:
                system.insert(event)
            if lossy:
                # The channel turns lossy only now, after loading: every
                # mode and system folds over identical stores, and the
                # fault plan's ticks count *serving* traffic only.  The
                # layer goes on both the system's scope (where queries
                # execute) and the facade (so telemetry sees it); each
                # run gets a fresh layer with identical per-link streams.
                layer = ReliabilityLayer(
                    loss=LossModel(
                        loss_rate, seed=derive(seed, "serve-loss", size)
                    ),
                    arq=ArqPolicy(retry_limit=retry_limit),
                    fault_plan=plan,
                )
                layer.bind(deployment.topology)
                system.network.reliability = layer
                facade.reliability = layer
            service = QueryService(
                system,
                name=system_name,
                cache=PlanResultCache() if mode == "cached" else None,
                batch_window=batch_window if mode == "cached" else 0.0,
                hop_latency=hop_latency,
                slo_target_s=slo_target_s,
                admission=admission,
                retry=retry,
                breaker=breaker,
            )
            try:
                reports[mode] = service.run(schedule)
            finally:
                service.close()
                closer = getattr(system, "close", None)
                if closer is not None:
                    closer()
            if telemetry:
                result.telemetry.append(
                    collect_system_record(
                        experiment="serve",
                        size=size,
                        trial=0,
                        system=f"{system_name}:{mode}",
                        network=facade,
                        store=system,
                        recorder=recorder,
                    )
                )
        result.rows.append(
            ServeRunRow(
                system=system_name,
                cached=reports["cached"],
                control=reports["control"],
            )
        )
    return result


def run_chaos_baseline(
    *,
    seed: int = 0,
    size: int = 100,
    duration: float = 20.0,
    rate: float = 6.0,
    queue_capacity: int = 4,
    deadline_s: float = 0.2,
    loss_rate: float = 0.08,
    chaos_deaths: int = 2,
    chaos_degradations: int = 1,
    retry_budget: int = 8,
    breaker_threshold: int = 3,
    progress: ProgressFn | None = None,
) -> dict[str, Any]:
    """The serve-chaos baseline: Pool under fixed overload, per shed policy.

    One ``run_serve`` per shed policy, all at the same seed, channel and
    overload factor, so the only difference between the policy rows is
    *which* requests a full queue sheds.  The output is the
    ``results/BENCH_serve_chaos.json`` artifact shape — deterministic, so
    the regen test can rebuild and compare it.
    """
    policies: dict[str, Any] = {}
    for policy in SHED_POLICIES:
        if progress is not None:
            progress(f"[serve-chaos] policy={policy}")
        outcome = run_serve(
            seed=seed,
            size=size,
            systems=("pool",),
            duration=duration,
            rate=rate,
            pattern="bursts",
            loss_rate=loss_rate,
            chaos_deaths=chaos_deaths,
            chaos_degradations=chaos_degradations,
            queue_capacity=queue_capacity,
            shed_policy=policy,
            deadline_s=deadline_s,
            retry_budget=retry_budget,
            breaker_threshold=breaker_threshold,
            progress=progress,
        )
        report = outcome.rows[0].cached
        offered = report.offered or 1
        policies[policy] = {
            "offered": report.offered,
            "goodput": round(report.goodput, 6),
            "shed_rate": round(report.shed / offered, 6),
            "timeout_rate": round(report.timeouts / offered, 6),
            "partial": report.partials,
            "stale_served": report.stale_served,
            "breaker_trips": report.breaker_trips,
            "latency_p95_s": round(report.latency_percentile(0.95), 6),
        }
    return {
        "schema": "bench-serve-chaos/1",
        "seed": seed,
        "size": size,
        "overload": {
            "duration_s": duration,
            "rate": rate,
            "queue_capacity": queue_capacity,
            "deadline_s": deadline_s,
            "loss_rate": loss_rate,
            "chaos_deaths": chaos_deaths,
            "chaos_degradations": chaos_degradations,
            "retry_budget": retry_budget,
            "breaker_threshold": breaker_threshold,
        },
        "policies": policies,
    }
