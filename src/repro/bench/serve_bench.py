"""``pool-bench serve`` — the online serving-layer benchmark.

For each system under test, one shared deployment hosts two service
configurations over independent scoped ledgers:

* **cached** — plan/result cache attached, batch coalescing enabled;
* **control** — no cache, no coalescing; every request plans and
  executes in full.

Both replay the *same* deterministic schedule against identically loaded
stores, so the messages-saved column is a measured ledger difference, not
an estimate.  Everything derives from the seed; two runs of the same
parameters produce byte-identical reports and telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.bench.harness import build_system
from repro.bench.workloads import ExperimentConfig
from repro.events.generators import EventWorkload, QueryWorkload
from repro.network.deployment import Deployment
from repro.network.network import Network
from repro.rng import derive
from repro.serve import (
    PlanResultCache,
    QueryService,
    ServeReport,
    build_schedule,
)
from repro.telemetry.export import collect_system_record
from repro.telemetry.spans import SpanRecorder

__all__ = ["ServeRunRow", "ServeRunResult", "run_serve", "SERVE_SYSTEMS"]

#: Range-query systems the serving layer fronts (GHT is a key/value
#: store — no range plans to cache).
SERVE_SYSTEMS: tuple[str, ...] = ("pool", "dim", "difs", "flooding", "external")

ProgressFn = Callable[[str], None]


def _serve_sinks(topology: Any, count: int) -> tuple[int, ...]:
    """``count`` geographically spread request sinks (deduped, in order).

    The base-station sink (field center) comes first, then the four
    quadrant centers — pure geometry, so the sink set is a deterministic
    function of the topology alone.  Spreading requests over several
    sinks matters for the external baseline in particular: from the
    warehouse node itself a query is free, which would make the control
    run trivially unbeatable.
    """
    field = topology.field
    xs = (field.x_min + field.width * 0.25, field.x_min + field.width * 0.75)
    ys = (field.y_min + field.height * 0.25, field.y_min + field.height * 0.75)
    candidates = [
        tuple(field.center),
        (xs[0], ys[0]),
        (xs[1], ys[1]),
        (xs[0], ys[1]),
        (xs[1], ys[0]),
    ]
    sinks: list[int] = []
    for point in candidates:
        node = topology.closest_node(point)
        if node not in sinks:
            sinks.append(node)
        if len(sinks) == count:
            break
    return tuple(sinks)


@dataclass(slots=True)
class ServeRunRow:
    """One system's cached run beside its uncached control run."""

    system: str
    cached: ServeReport
    control: ServeReport

    @property
    def messages_saved(self) -> int:
        """Measured ledger difference: control minus cached."""
        return self.control.messages_total - self.cached.messages_total

    def as_dict(self) -> dict[str, Any]:
        return {
            "system": self.system,
            "messages_saved": self.messages_saved,
            "cached": self.cached.as_dict(),
            "control": self.control.as_dict(include_requests=False),
        }


@dataclass(slots=True)
class ServeRunResult:
    """Everything one ``pool-bench serve`` invocation produced."""

    seed: int
    size: int
    requests: int
    duration: float
    pattern: str
    rows: list[ServeRunRow] = field(default_factory=list)
    telemetry: list[dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        """The SLO report artifact (deterministic; diffable in CI)."""
        return {
            "schema": "serve-run/1",
            "seed": self.seed,
            "size": self.size,
            "requests": self.requests,
            "duration_s": round(self.duration, 6),
            "pattern": self.pattern,
            "rows": [row.as_dict() for row in self.rows],
        }


def run_serve(
    *,
    seed: int = 0,
    size: int = 150,
    dimensions: int = 3,
    events_per_node: int = 2,
    systems: Sequence[str] = SERVE_SYSTEMS,
    duration: float = 60.0,
    rate: float = 2.0,
    pattern: str = "poisson",
    repeat_fraction: float = 0.75,
    unique_queries: int = 8,
    burst_size: int = 4,
    num_sinks: int = 3,
    batch_window: float = 0.2,
    hop_latency: float = 0.01,
    slo_target_s: float = 0.5,
    telemetry: bool = False,
    progress: ProgressFn | None = None,
) -> ServeRunResult:
    """Run the serving-layer benchmark; see the module docstring.

    The deployment, event load and schedule are shared across all
    systems and both configurations — only the serving policy differs.
    """
    config = ExperimentConfig(
        name="serve",
        title="online serving layer",
        network_sizes=(size,),
        dimensions=dimensions,
        events_per_node=events_per_node,
        event_workload=EventWorkload(dimensions=dimensions),
        query_workloads=(
            QueryWorkload(dimensions=dimensions, kind="exact", range_sizes="uniform"),
        ),
        query_count=1,
        trials=1,
        systems=tuple(systems),
    )
    deployment = Deployment.deploy(
        size,
        radio_range=config.radio_range,
        target_degree=config.target_degree,
        seed=derive(seed, "serve-topology", size),
    )
    try:
        return _run_serve_systems(
            config,
            deployment,
            seed=seed,
            duration=duration,
            rate=rate,
            pattern=pattern,
            repeat_fraction=repeat_fraction,
            unique_queries=unique_queries,
            burst_size=burst_size,
            num_sinks=num_sinks,
            batch_window=batch_window,
            hop_latency=hop_latency,
            slo_target_s=slo_target_s,
            telemetry=telemetry,
            progress=progress,
        )
    finally:
        closer = getattr(deployment, "close", None)
        if closer is not None:
            closer()


def _run_serve_systems(
    config: ExperimentConfig,
    deployment: Deployment,
    *,
    seed: int,
    duration: float,
    rate: float,
    pattern: str,
    repeat_fraction: float,
    unique_queries: int,
    burst_size: int,
    num_sinks: int,
    batch_window: float,
    hop_latency: float,
    slo_target_s: float,
    telemetry: bool,
    progress: ProgressFn | None,
) -> ServeRunResult:
    size = config.network_sizes[0]
    root = Network(deployment=deployment)
    sinks = _serve_sinks(deployment.topology, num_sinks)
    events = config.event_workload.generate(
        config.events_per_node * size,
        seed=derive(seed, "serve-events", size),
        sources=list(deployment.topology),
    )
    schedule = build_schedule(
        workload=config.query_workloads[0],
        sinks=sinks,
        duration=duration,
        rate=rate,
        seed=derive(seed, "serve-schedule", size),
        pattern=pattern,
        repeat_fraction=repeat_fraction,
        unique_queries=unique_queries,
        burst_size=burst_size,
    )
    result = ServeRunResult(
        seed=seed,
        size=size,
        requests=len(schedule),
        duration=duration,
        pattern=pattern,
    )
    for system_name in config.systems:
        reports: dict[str, ServeReport] = {}
        for mode in ("cached", "control"):
            if progress is not None:
                progress(
                    f"[serve] n={size} system={system_name} mode={mode} "
                    f"requests={len(schedule)}"
                )
            facade = root.scope(f"{system_name}:{mode}")
            recorder: SpanRecorder | None = None
            if telemetry:
                recorder = SpanRecorder(label=f"{system_name}:{mode}")
                # Set before the system scopes its own ledger off the
                # facade so the recorder propagates to scopes below.
                facade.telemetry = recorder
            system = build_system(system_name, facade, config, seed)
            for event in events:
                system.insert(event)
            service = QueryService(
                system,
                name=system_name,
                cache=PlanResultCache() if mode == "cached" else None,
                batch_window=batch_window if mode == "cached" else 0.0,
                hop_latency=hop_latency,
                slo_target_s=slo_target_s,
            )
            try:
                reports[mode] = service.run(schedule)
            finally:
                service.close()
                closer = getattr(system, "close", None)
                if closer is not None:
                    closer()
            if telemetry:
                result.telemetry.append(
                    collect_system_record(
                        experiment="serve",
                        size=size,
                        trial=0,
                        system=f"{system_name}:{mode}",
                        network=facade,
                        store=system,
                        recorder=recorder,
                    )
                )
        result.rows.append(
            ServeRunRow(
                system=system_name,
                cached=reports["cached"],
                control=reports["control"],
            )
        )
    return result
