"""Benchmark harness: regenerate every figure of the paper's evaluation.

* :mod:`repro.bench.workloads` — declarative experiment configurations
  (network sweep × query workloads × systems).
* :mod:`repro.bench.harness` — the runner that deploys, loads and queries
  each system and aggregates per-query message costs.
* :mod:`repro.bench.experiments` — the registry: ``fig6a``, ``fig6b``,
  ``fig7a``, ``fig7b`` plus the ablations from DESIGN.md.
* :mod:`repro.bench.reporting` — ASCII tables and JSON export.
* :mod:`repro.bench.cli` — the ``pool-bench`` command.
"""

from repro.bench.workloads import ExperimentConfig
from repro.bench.harness import ExperimentResult, ResultRow, run_experiment
from repro.bench.experiments import EXPERIMENTS, get_experiment
from repro.bench.reporting import Table

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ResultRow",
    "run_experiment",
    "EXPERIMENTS",
    "get_experiment",
    "Table",
]
