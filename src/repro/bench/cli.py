"""``pool-bench`` — regenerate the paper's figures from the command line.

Examples
--------
::

    pool-bench list                     # show every experiment
    pool-bench fig6a                    # full-scale Figure 6(a)
    pool-bench fig7a --scale 0.3        # quick pass at 30% workload
    pool-bench all --json results.json  # every figure + ablations
    pool-bench abl-hotspot              # skew/hotspot table
    pool-bench abl-routing              # GPSR validation table

    pool-bench fig7a --telemetry out.jsonl   # capture telemetry (JSONL)
    pool-bench report out.jsonl              # render hotspot/energy/spans
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from time import perf_counter
from typing import Any

from repro.bench.ablations import run_hotspot_ablation, run_routing_ablation
from repro.bench.experiments import EXPERIMENTS, get_experiment
from repro.bench.harness import run_experiment
from repro.bench.reporting import (
    err_flagged_lines,
    render_err_sidecar,
    render_result,
    render_telemetry,
    result_from_export,
    to_json,
)
from repro.bench.serve_bench import SERVE_SYSTEMS, run_chaos_baseline, run_serve
from repro.exceptions import ConfigurationError, ValidationError
from repro.network.reliability import FaultPlan
from repro.serve import (
    ARRIVAL_PATTERNS,
    SHED_POLICIES,
    render_robustness_table,
    render_serve_table,
)
from repro.serve.admission import SHED_DROP_TAIL
from repro.telemetry.export import read_telemetry_jsonl, write_telemetry_jsonl

__all__ = ["main", "build_parser"]

_SPECIAL = ("abl-hotspot", "abl-routing", "serve")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pool-bench",
        description=(
            "Reproduce the evaluation figures of 'Supporting "
            "Multi-Dimensional Range Query for Sensor Networks' (ICDCS 2007)"
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment name (see 'pool-bench list'), 'all' for every "
            "registry experiment, 'report' to render a telemetry JSONL "
            "export, or one of: " + ", ".join(_SPECIAL)
        ),
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help=(
            "for 'report': telemetry JSONL or results JSON export to "
            "render; a sibling .err stderr capture is surfaced too"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor in (0, 1]; 1.0 = paper scale",
    )
    parser.add_argument(
        "--trials", type=int, default=None, help="override trial count"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the (size, trial) grid; results are "
            "identical to --jobs 1 for the same seed"
        ),
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="also write results as JSON"
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help=(
            "capture per-(size, trial, system) telemetry — spans, hotspot "
            "and energy views — and write it as JSONL (schema telemetry/2); "
            "byte-identical for any --jobs value at the same seed"
        ),
    )
    parser.add_argument(
        "--flight-recorder",
        action="store_true",
        help=(
            "record a bounded per-hop event ring (hop taken, greedy/"
            "perimeter mode, retransmits, losses) keyed by packet id and "
            "export it in the telemetry records; requires --telemetry; "
            "replay one packet with 'python -m repro.obs.route'"
        ),
    )
    parser.add_argument(
        "--percentiles",
        action="store_true",
        help=(
            "for 'report' on a telemetry export: append the per-(system, "
            "size) p50/p95/p99 query latency and message-cost table"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help=(
            "spatially partition each cell's deployment across K tile "
            "workers (shard-aware engine); rows, ledgers and telemetry "
            "are byte-identical to --shards 1 for the same seed"
        ),
    )
    parser.add_argument(
        "--shard-workers",
        choices=("process", "inline"),
        default="process",
        help=(
            "how shard tiles execute: forked worker processes (default) "
            "or in-process states (fastest on a single core)"
        ),
    )
    parser.add_argument(
        "--loss-rate",
        type=float,
        default=0.0,
        metavar="P",
        help=(
            "per-link Bernoulli loss probability in [0, 1); 0.0 (default) "
            "runs the seed's perfect-link accounting"
        ),
    )
    parser.add_argument(
        "--retry-limit",
        type=int,
        default=3,
        metavar="N",
        help="ARQ retransmissions allowed per hop before a delivery fails",
    )
    parser.add_argument(
        "--fault-plan",
        metavar="PATH",
        default=None,
        help=(
            "JSON fault-injection plan (node deaths, link degradation "
            "windows, message drop rules) applied during the run"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    serve = parser.add_argument_group(
        "serve options (the 'serve' experiment: online serving layer "
        "with plan caching and batch coalescing)"
    )
    serve.add_argument(
        "--size",
        type=int,
        default=150,
        help="network size for the serve deployment",
    )
    serve.add_argument(
        "--systems",
        metavar="A,B,...",
        default=",".join(SERVE_SYSTEMS),
        help="comma-separated systems to serve against",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=60.0,
        help="schedule length in simulated seconds",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=2.0,
        help="mean request arrival rate (requests per simulated second)",
    )
    serve.add_argument(
        "--pattern",
        choices=ARRIVAL_PATTERNS,
        default="poisson",
        help="arrival process for the scheduled workload",
    )
    serve.add_argument(
        "--repeat-fraction",
        type=float,
        default=0.75,
        help="probability a request re-asks a hot-pool query",
    )
    serve.add_argument(
        "--unique-queries",
        type=int,
        default=8,
        help="size of the hot query pool",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.2,
        help=(
            "admission window in simulated seconds for the cached "
            "configuration (requests inside one window may coalesce)"
        ),
    )
    serve.add_argument(
        "--slo",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="latency SLO target the report scores attainment against",
    )
    serve.add_argument(
        "--slo-report",
        metavar="PATH",
        default=None,
        help="write the serve run's deterministic SLO report as JSON",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=None,
        metavar="N",
        help=(
            "bounded admission-queue capacity with a server-occupancy "
            "model; a full queue sheds by --shed-policy (default: "
            "unbounded legacy synchronous serving)"
        ),
    )
    serve.add_argument(
        "--shed-policy",
        choices=SHED_POLICIES,
        default=SHED_DROP_TAIL,
        help="which request a full admission queue sheds",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-request completion deadline in simulated seconds; "
            "expired queued requests are timed out without executing"
        ),
    )
    serve.add_argument(
        "--retry-budget",
        type=int,
        default=0,
        metavar="N",
        help=(
            "total partial-result re-executions one service run may "
            "spend (0 disables retries)"
        ),
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        metavar="N",
        help=(
            "consecutive partial/failed executions that trip the circuit "
            "breaker (default: no breaker)"
        ),
    )
    serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="simulated seconds a tripped breaker stays open",
    )
    serve.add_argument(
        "--chaos-deaths",
        type=int,
        default=0,
        metavar="N",
        help=(
            "generate N deterministic mid-run node-death events "
            "(serve sinks are never killed)"
        ),
    )
    serve.add_argument(
        "--chaos-degradations",
        type=int,
        default=0,
        metavar="N",
        help="generate N deterministic link-degradation windows",
    )
    serve.add_argument(
        "--chaos-baseline",
        metavar="PATH",
        default=None,
        help=(
            "run the fixed-overload serve-chaos baseline (Pool under "
            "every shed policy) and write it as JSON, skipping the "
            "normal serve run"
        ),
    )
    return parser


def _progress(line: str) -> None:
    print(line, file=sys.stderr)


def _render_report_target(
    target: str, *, percentiles: bool = False
) -> tuple[str, int]:
    """Render ``pool-bench report TARGET``; returns ``(text, flagged)``.

    ``TARGET`` is either a telemetry JSONL export (``--telemetry``) or a
    results JSON export (``--json``), picked by extension.  Either way, a
    sibling ``.err`` sidecar — the captured stderr of the run that
    produced the export, e.g. ``results/fig6a.err`` next to
    ``results/fig6a.json`` — is appended so crashed cells are visible in
    the report instead of silently missing from the tables.  ``flagged``
    counts the sidecar lines that look like failures; the caller turns a
    non-zero count into a non-zero exit status.
    """
    path = Path(target)
    parts: list[str]
    if path.suffix == ".json":
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, list):
            raise ValidationError(
                "results export must be a JSON list of experiment objects"
            )
        parts = [render_result(result_from_export(entry)) for entry in payload]
    else:
        header, records = read_telemetry_jsonl(target)
        parts = [render_telemetry(header, records, percentiles=percentiles)]
    flagged = 0
    sidecar = path.with_suffix(".err")
    if sidecar.is_file():
        text = sidecar.read_text(encoding="utf-8")
        flagged = len(err_flagged_lines(text))
        parts.append(render_err_sidecar(str(sidecar), text))
    return "\n\n".join(parts), flagged


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        print("available experiments:")
        for name, config in sorted(EXPERIMENTS.items()):
            print(f"  {name:12s} {config.title}")
        for name in _SPECIAL:
            print(f"  {name:12s} (special ablation runner)")
        return 0

    if args.experiment == "report":
        if not args.target:
            print(
                "report requires a telemetry JSONL or results JSON path",
                file=sys.stderr,
            )
            return 2
        try:
            rendered, flagged = _render_report_target(
                args.target, percentiles=args.percentiles
            )
        except (OSError, ValidationError, ValueError, KeyError) as error:
            print(f"cannot read {args.target}: {error}", file=sys.stderr)
            return 1
        print(rendered)
        if flagged:
            # A rendered report over a crashed run must not exit green:
            # CI pipelines that chain `pool-bench ... 2>results/x.err &&
            # pool-bench report results/x.json` rely on this status.
            print(
                f"report: {flagged} failure-flagged stderr line"
                f"{'' if flagged == 1 else 's'} in the .err sidecar",
                file=sys.stderr,
            )
            return 3
        return 0

    if args.experiment == "abl-hotspot":
        print(run_hotspot_ablation(seed=args.seed).render())
        return 0
    if args.experiment == "abl-routing":
        print(run_routing_ablation(seed=args.seed).render())
        return 0

    if args.experiment == "serve":
        if args.chaos_baseline:
            try:
                baseline = run_chaos_baseline(
                    seed=args.seed,
                    progress=None if args.quiet else _progress,
                )
            except (ConfigurationError, ValidationError, ValueError) as error:
                print(f"serve: {error}", file=sys.stderr)
                return 2
            with open(args.chaos_baseline, "w", encoding="utf-8") as handle:
                json.dump(baseline, handle, indent=1, sort_keys=True)
                handle.write("\n")
            print(
                f"serve-chaos baseline written to {args.chaos_baseline}",
                file=sys.stderr,
            )
            return 0
        serve_fault_plan = None
        if args.fault_plan is not None:
            try:
                serve_fault_plan = FaultPlan.load(args.fault_plan)
            except (OSError, ValidationError, ValueError) as error:
                print(f"cannot read {args.fault_plan}: {error}", file=sys.stderr)
                return 1
        try:
            outcome = run_serve(
                seed=args.seed,
                size=args.size,
                systems=tuple(
                    name for name in args.systems.split(",") if name
                ),
                duration=args.duration,
                rate=args.rate,
                pattern=args.pattern,
                repeat_fraction=args.repeat_fraction,
                unique_queries=args.unique_queries,
                batch_window=args.batch_window,
                slo_target_s=args.slo,
                loss_rate=args.loss_rate,
                retry_limit=args.retry_limit,
                fault_plan=serve_fault_plan,
                chaos_deaths=args.chaos_deaths,
                chaos_degradations=args.chaos_degradations,
                queue_capacity=args.queue_capacity,
                shed_policy=args.shed_policy,
                deadline_s=args.deadline,
                retry_budget=args.retry_budget,
                breaker_threshold=args.breaker_threshold,
                breaker_cooldown_s=args.breaker_cooldown,
                telemetry=args.telemetry is not None,
                progress=None if args.quiet else _progress,
            )
        except (ConfigurationError, ValidationError, ValueError) as error:
            print(f"serve: {error}", file=sys.stderr)
            return 2
        print(
            f"serve: {outcome.requests} requests over "
            f"{outcome.duration:.0f}s simulated ({outcome.pattern}), "
            f"n={outcome.size}, seed={outcome.seed}\n"
        )
        print(render_serve_table([(row.cached, row.control) for row in outcome.rows]))
        if outcome.robust:
            # Extra outcome table only on robust runs, so default runs
            # keep their exact historical stdout.
            print()
            print(
                render_robustness_table([row.cached for row in outcome.rows])
            )
        if args.slo_report:
            with open(args.slo_report, "w", encoding="utf-8") as handle:
                json.dump(outcome.as_dict(), handle, indent=1, sort_keys=True)
                handle.write("\n")
            print(f"SLO report written to {args.slo_report}", file=sys.stderr)
        if args.telemetry:
            write_telemetry_jsonl(
                args.telemetry, outcome.telemetry, seed=args.seed, mode="serve"
            )
            print(f"telemetry written to {args.telemetry}", file=sys.stderr)
        return 0

    if args.experiment == "all":
        names = sorted(EXPERIMENTS)
    else:
        names = [args.experiment]

    if args.flight_recorder and args.telemetry is None:
        print(
            "--flight-recorder requires --telemetry (the ring is exported "
            "inside the telemetry records)",
            file=sys.stderr,
        )
        return 2

    fault_plan = None
    if args.fault_plan is not None:
        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValidationError, ValueError) as error:
            print(f"cannot read {args.fault_plan}: {error}", file=sys.stderr)
            return 1

    results: list[ExperimentResult] = []
    telemetry_records: list[dict[str, Any]] = []
    for name in names:
        config = get_experiment(name)
        if args.scale != 1.0:
            config = config.scaled(args.scale)
        if args.trials is not None:
            config = replace(config, trials=args.trials)
        if args.loss_rate or args.retry_limit != 3 or fault_plan is not None:
            config = replace(
                config,
                loss_rate=args.loss_rate,
                retry_limit=args.retry_limit,
                fault_plan=fault_plan,
            )
        if args.shards != 1:
            config = replace(
                config, shards=args.shards, shard_workers=args.shard_workers
            )
        if args.flight_recorder:
            config = replace(config, flight_recorder=True)
        started = perf_counter()
        result = run_experiment(
            config,
            seed=args.seed,
            jobs=args.jobs,
            progress=None if args.quiet else _progress,
            telemetry=args.telemetry is not None,
        )
        elapsed = perf_counter() - started
        print(render_result(result))
        print(f"({name} finished in {elapsed:.1f}s)\n")
        results.append(result)
        telemetry_records.extend(result.telemetry)

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(to_json(results))
        print(f"JSON written to {args.json}", file=sys.stderr)
    if args.telemetry:
        header_fields: dict[str, Any] = {"seed": args.seed}
        if args.shards != 1:
            # Tagged so readers can tell a sharded export apart; the
            # shard merge (python -m repro.shard.merge) strips it before
            # byte-comparison against a --shards 1 export.
            header_fields["shards"] = args.shards
        write_telemetry_jsonl(args.telemetry, telemetry_records, **header_fields)
        print(f"telemetry written to {args.telemetry}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
