"""``pool-bench`` — regenerate the paper's figures from the command line.

Examples
--------
::

    pool-bench list                     # show every experiment
    pool-bench fig6a                    # full-scale Figure 6(a)
    pool-bench fig7a --scale 0.3        # quick pass at 30% workload
    pool-bench all --json results.json  # every figure + ablations
    pool-bench abl-hotspot              # skew/hotspot table
    pool-bench abl-routing              # GPSR validation table
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.ablations import run_hotspot_ablation, run_routing_ablation
from repro.bench.experiments import EXPERIMENTS, get_experiment
from repro.bench.harness import run_experiment
from repro.bench.reporting import render_result, to_json

__all__ = ["main", "build_parser"]

_SPECIAL = ("abl-hotspot", "abl-routing")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pool-bench",
        description=(
            "Reproduce the evaluation figures of 'Supporting "
            "Multi-Dimensional Range Query for Sensor Networks' (ICDCS 2007)"
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment name (see 'pool-bench list'), 'all' for every "
            "registry experiment, or one of: " + ", ".join(_SPECIAL)
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor in (0, 1]; 1.0 = paper scale",
    )
    parser.add_argument(
        "--trials", type=int, default=None, help="override trial count"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the (size, trial) grid; results are "
            "identical to --jobs 1 for the same seed"
        ),
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="also write results as JSON"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    return parser


def _progress(line: str) -> None:
    print(line, file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        print("available experiments:")
        for name, config in sorted(EXPERIMENTS.items()):
            print(f"  {name:12s} {config.title}")
        for name in _SPECIAL:
            print(f"  {name:12s} (special ablation runner)")
        return 0

    if args.experiment == "abl-hotspot":
        print(run_hotspot_ablation(seed=args.seed).render())
        return 0
    if args.experiment == "abl-routing":
        print(run_routing_ablation(seed=args.seed).render())
        return 0

    if args.experiment == "all":
        names = sorted(EXPERIMENTS)
    else:
        names = [args.experiment]

    results = []
    for name in names:
        config = get_experiment(name)
        if args.scale != 1.0:
            config = config.scaled(args.scale)
        if args.trials is not None:
            from dataclasses import replace

            config = replace(config, trials=args.trials)
        started = time.time()
        result = run_experiment(
            config,
            seed=args.seed,
            jobs=args.jobs,
            progress=None if args.quiet else _progress,
        )
        elapsed = time.time() - started
        print(render_result(result))
        print(f"({name} finished in {elapsed:.1f}s)\n")
        results.append(result)

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(to_json(results))
        print(f"JSON written to {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
