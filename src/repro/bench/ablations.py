"""Special-purpose ablation runners that need metrics beyond query cost.

* :func:`run_hotspot_ablation` — storage imbalance under skewed events:
  maximum and 99th-percentile per-node load for DIM, Pool without sharing
  and Pool with sharing (plus the sharing message overhead).
* :func:`run_routing_ablation` — validates the GPSR substrate: greedy
  success ratio and path stretch (GPSR hops / shortest-path hops) across
  densities.

Both return :class:`~repro.bench.reporting.Table` objects directly.
"""

from __future__ import annotations

import math
import statistics

from repro.bench.reporting import Table
from repro.core.sharing import SharingPolicy
from repro.core.system import PoolSystem
from repro.dim.index import DimIndex
from repro.events.generators import EventDistribution, generate_events
from repro.network.deployment import Deployment
from repro.network.messages import MessageCategory
from repro.network.network import Network
from repro.network.topology import Topology, deploy_uniform
from repro.rng import derive

__all__ = ["run_hotspot_ablation", "run_routing_ablation"]


def _load_stats(distribution: dict[int, int]) -> tuple[int, float, int]:
    """(max, p99, holders) of a per-node event-count distribution."""
    if not distribution:
        return (0, 0.0, 0)
    loads = sorted(distribution.values())
    p99 = loads[min(len(loads) - 1, int(math.ceil(0.99 * len(loads))) - 1)]
    return (loads[-1], float(p99), len(loads))


def run_hotspot_ablation(
    *,
    size: int = 900,
    events_per_node: int = 3,
    capacity: int = 32,
    seed: int = 0,
    distribution: EventDistribution = "gaussian",
) -> Table:
    """Storage hotspots under a skewed event distribution.

    The paper (Section 1): DIM "does not adapt gracefully to skewed data";
    Pool's workload sharing spreads a hot cell over delegates.  The table
    reports the hottest node's load for each configuration — with sharing
    enabled the maximum should approach the configured capacity.
    """
    # One deployment serves all three configurations: the GPSR route
    # cache warmed by DIM's inserts is reused by both Pool variants.
    deployment = Deployment.deploy(size, seed=derive(seed, "hotspot-topo"))
    root = Network(deployment=deployment)
    events = generate_events(
        events_per_node * size,
        3,
        distribution=distribution,
        seed=derive(seed, "hotspot-events"),
        sources=list(deployment.topology),
    )
    table = Table(
        title=(
            f"Hotspot ablation: {distribution} events, n={size}, "
            f"{events_per_node} events/node, sharing capacity {capacity}"
        ),
        headers=[
            "system",
            "max load",
            "p99 load",
            "storing nodes",
            "sharing msgs",
        ],
    )

    dim = DimIndex(root.scope("dim"), 3)
    for event in events:
        dim.insert(event)
    max_load, p99, holders = _load_stats(dim.storage_distribution())
    table.add("dim", max_load, p99, holders, 0)

    for label, sharing in (
        ("pool (no sharing)", SharingPolicy()),
        ("pool (sharing)", SharingPolicy(enabled=True, capacity=capacity)),
    ):
        net = root.scope(label)
        pool = PoolSystem(
            net, 3, seed=derive(seed, "hotspot-pivots"), sharing=sharing
        )
        for event in events:
            pool.insert(event)
        max_load, p99, holders = _load_stats(pool.storage_distribution())
        table.add(
            label,
            max_load,
            p99,
            holders,
            net.stats.count(MessageCategory.SHARING),
        )
    return table


def _bfs_hops(topology: Topology, src: int, dst: int) -> int:
    """Shortest-path hop count on the radio graph (ground truth)."""
    if src == dst:
        return 0
    table = topology.neighbor_table
    seen = {src: 0}
    frontier = [src]
    while frontier:
        nxt: list[int] = []
        for node in frontier:
            for neighbor in table[node]:
                if neighbor not in seen:
                    seen[neighbor] = seen[node] + 1
                    if neighbor == dst:
                        return seen[neighbor]
                    nxt.append(neighbor)
        frontier = nxt
    return -1  # disconnected (not expected on our deployments)


def run_routing_ablation(
    *,
    size: int = 600,
    degrees: tuple[float, ...] = (8.0, 12.0, 16.0, 20.0),
    samples: int = 150,
    seed: int = 0,
) -> Table:
    """GPSR validation: delivery, greedy ratio and stretch vs density."""
    table = Table(
        title=f"Routing ablation: GPSR on n={size}, {samples} random pairs per density",
        headers=[
            "avg degree target",
            "measured degree",
            "delivered",
            "greedy-only",
            "mean stretch",
            "max stretch",
        ],
    )
    for degree in degrees:
        topology = deploy_uniform(
            size,
            target_degree=degree,
            seed=derive(seed, "routing-topo", int(degree * 10)),
        )
        from repro.routing.gpsr import GPSRRouter

        router = GPSRRouter(topology)
        rng = derive(seed, "routing-pairs")
        delivered = greedy = attempted = 0
        stretches: list[float] = []
        while attempted < samples:
            src, dst = (int(x) for x in rng.integers(0, size, 2))
            if src == dst:
                continue
            attempted += 1
            result = router.route(src, dst)
            if not result.delivered:
                continue
            delivered += 1
            if result.greedy_only:
                greedy += 1
            shortest = _bfs_hops(topology, src, dst)
            if shortest > 0:
                stretches.append(result.hops / shortest)
        table.add(
            degree,
            topology.average_degree,
            f"{delivered}/{samples}",
            f"{greedy}/{delivered}" if delivered else "0/0",
            statistics.fmean(stretches) if stretches else 0.0,
            max(stretches) if stretches else 0.0,
        )
    return table
