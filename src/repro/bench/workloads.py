"""Declarative experiment configurations.

An :class:`ExperimentConfig` captures everything needed to regenerate one
figure: the network-size sweep, the event workload, one or more query
workloads (the figure's x-axis categories when sizes are fixed), the
systems under test and the simulation parameters from Section 5.1 of the
paper (radio range 40 m, ~20 neighbors, α = 5 m, l = 10, three
3-dimensional events per node).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.events.generators import EventWorkload, QueryWorkload
from repro.exceptions import ConfigurationError
from repro.network.reliability import FaultPlan

__all__ = ["ExperimentConfig", "PAPER_NETWORK_SIZES"]

#: The paper's Figure 6 sweep: "from 300 to 3000" sensor nodes.
PAPER_NETWORK_SIZES: tuple[int, ...] = tuple(range(300, 3001, 300))


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Everything one experiment needs, immutable and replayable.

    Attributes
    ----------
    name, title:
        Registry key and human title (e.g. ``fig6a``).
    paper_claim:
        One-sentence statement of the *shape* the paper reports, recorded
        in EXPERIMENTS.md next to our measurement.
    network_sizes:
        Node counts to sweep.
    query_workloads:
        One per series/category on the figure's x-axis.
    systems:
        Registry names of the systems under test.
    """

    name: str
    title: str
    paper_claim: str = ""
    network_sizes: tuple[int, ...] = (900,)
    dimensions: int = 3
    events_per_node: int = 3
    event_workload: EventWorkload = field(
        default_factory=lambda: EventWorkload(dimensions=3)
    )
    query_workloads: tuple[QueryWorkload, ...] = ()
    query_count: int = 60
    trials: int = 3
    systems: tuple[str, ...] = ("pool", "dim")
    # Section 5.1 physical parameters.
    radio_range: float = 40.0
    target_degree: float = 20.0
    cell_size: float = 5.0
    side_length: int = 10
    # Pool options exercised by ablations.
    sharing_capacity: int | None = None
    route_via_splitter: bool = True
    # Lossy-link reliability knobs (0.0 / None = the seed's perfect links).
    loss_rate: float = 0.0
    retry_limit: int = 3
    fault_plan: FaultPlan | None = None
    # Shard-aware engine: spatially partition each cell's deployment into
    # this many tiles (1 = the monolithic router).  Results are
    # byte-identical for any value; ``shard_workers`` picks whether tiles
    # run as forked worker processes or in-process states.
    shards: int = 1
    shard_workers: str = "process"
    # Flight recorder: capture a bounded per-hop event ring per system
    # (exported into telemetry records).  Off by default so captures stay
    # byte-identical to runs predating the recorder.
    flight_recorder: bool = False
    flight_recorder_capacity: int = 4096

    def __post_init__(self) -> None:
        if not self.network_sizes:
            raise ConfigurationError(f"{self.name}: no network sizes")
        if not self.query_workloads:
            raise ConfigurationError(f"{self.name}: no query workloads")
        if not self.systems:
            raise ConfigurationError(f"{self.name}: no systems under test")
        if self.query_count < 1 or self.trials < 1:
            raise ConfigurationError(
                f"{self.name}: query_count and trials must be >= 1"
            )
        if self.events_per_node < 0:
            raise ConfigurationError(f"{self.name}: events_per_node must be >= 0")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"{self.name}: loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.retry_limit < 0:
            raise ConfigurationError(
                f"{self.name}: retry_limit must be >= 0, got {self.retry_limit}"
            )
        if self.shards < 1:
            raise ConfigurationError(
                f"{self.name}: shards must be >= 1, got {self.shards}"
            )
        if self.shard_workers not in ("inline", "process"):
            raise ConfigurationError(
                f"{self.name}: shard_workers must be 'inline' or 'process', "
                f"got {self.shard_workers!r}"
            )
        if self.flight_recorder_capacity < 1:
            raise ConfigurationError(
                f"{self.name}: flight_recorder_capacity must be >= 1, got "
                f"{self.flight_recorder_capacity}"
            )

    def scaled(self, factor: float) -> "ExperimentConfig":
        """A cheaper variant for smoke tests / pytest-benchmark runs.

        Scales the network sweep, query count and trial count down by
        ``factor`` (at least one of each survives); used by the
        ``--scale`` CLI flag and the benchmark suite so CI stays fast
        while ``pool-bench`` regenerates the full figures.
        """
        if factor <= 0 or factor > 1:
            raise ConfigurationError(f"scale factor must be in (0, 1], got {factor}")
        sizes = tuple(
            sorted({max(100, int(size * factor)) for size in self.network_sizes})
        )
        return replace(
            self,
            network_sizes=sizes,
            query_count=max(5, int(self.query_count * factor)),
            trials=max(1, int(self.trials * factor)),
        )
