"""Pinned micro-benchmark grid and the ``results/BENCH_scale.json`` trend.

The ROADMAP's "raw speed" item needs a tripwire, not a dashboard: a small
grid of *pinned* cells (fixed seeds, fixed sizes, fixed pair lists) timed
on every CI run, appended to ``results/BENCH_scale.json``, and compared
against the committed baseline.  A cell that slows down by more than 20%
— after normalizing both sides by a pure-Python calibration loop so a
slower CI machine does not raise false alarms — fails the job.

Usage::

    python -m repro.bench.perf                  # run grid, append history
    python -m repro.bench.perf --check          # + fail on >20% regression
    python -m repro.bench.perf --update-baseline
    python -m repro.bench.perf --scale-demo     # 10^4-node sharded cell

The scale demo is the acceptance run for the shard-aware engine: one
10⁴-node grid cell — more than 10× the paper's 900-node maximum — timed
single-process (recorded as ``budget_seconds``) and with ``--shards 4``,
which must finish under that budget.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Iterable

from repro.bench.harness import _run_cell
from repro.bench.workloads import ExperimentConfig
from repro.events.generators import QueryWorkload
from repro.network.deployment import Deployment
from repro.rng import derive, ensure_generator

__all__ = [
    "PERF_SCHEMA",
    "REGRESSION_THRESHOLD",
    "calibrate",
    "run_grid",
    "run_scale_demo",
    "check_against_baseline",
    "capture_profile_records",
    "write_profile_baseline",
    "attribute_regression",
    "main",
]

PERF_SCHEMA = "bench-scale/1"

#: A cell is a regression when BOTH its calibration-normalized time and
#: its raw seconds exceed the baseline's by more than this factor.  The
#: conjunction is what makes the tripwire hold on shared machines: the
#: normalized ratio cancels a uniformly slower runner (seconds up,
#: normalized flat), while the raw ratio cancels calibration jitter
#: (normalized up, seconds flat).  A genuine code regression on a
#: comparable runner moves both.
REGRESSION_THRESHOLD = 1.20

_DEFAULT_PATH = Path("results") / "BENCH_scale.json"

#: Committed telemetry capture of the pinned ``cell-900`` benchmark cell
#: — the *structural* baseline the wall-clock tripwire diffs against.
#: Wall-clock says THAT something slowed down; the capture diff says
#: WHICH subtree's deterministic work grew (or that none did, i.e. the
#: slowdown is a constant factor, not an algorithmic change).
_PROFILE_BASELINE_PATH = Path("results") / "BENCH_profile.jsonl"

#: Attribution artifacts written next to the trend file on a --check
#: failure (CI uploads both).
_ATTRIBUTION_PATH = Path("results") / "perf-attribution.json"
_ATTRIBUTION_TRACE_PATH = Path("results") / "perf-attribution.trace.json"


def calibrate(rounds: int = 5) -> float:
    """Seconds for a fixed pure-Python workload (machine-speed yardstick).

    Both the baseline and the current run divide their cell times by
    their own calibration, so the regression check compares *work per
    machine-second*, tolerating CI runners of different speeds.  Best of
    ``rounds`` to shave scheduler noise.
    """
    best = float("inf")
    for _ in range(rounds):
        started = perf_counter()
        acc = 0
        for i in range(1_000_000):
            acc = (acc * 31 + i) % 1_000_003
        best = min(best, perf_counter() - started)
    return best


def _pinned_pairs(size: int, count: int) -> list[tuple[int, int]]:
    """Deterministic (src, dst) routing pairs for a ``size``-node grid."""
    rng = ensure_generator(derive(0, "perf", "pairs", size))
    pairs: list[tuple[int, int]] = []
    while len(pairs) < count:
        src, dst = (int(v) for v in rng.integers(0, size, size=2))
        if src != dst:
            pairs.append((src, dst))
    return pairs


def _deploy(size: int) -> Deployment:
    # Deliberately the harness's ("topology", size, trial=0) stream: the
    # perf tripwire must measure the exact deployment the experiment
    # harness builds for that cell, or BENCH_scale.json drifts.
    return Deployment.deploy(
        size,
        radio_range=40.0,
        target_degree=20.0,
        seed=derive(0, "topology", size, 0),  # repro-lint: ignore[REP102]
    )


def _bench_deploy_2000() -> None:
    for _ in range(4):
        _deploy(2000)


def _bench_route_900() -> None:
    deployment = _deploy(900)
    for src, dst in _pinned_pairs(900, 600):
        deployment.router.route(src, dst)


def _bench_route_2000_shards4() -> None:
    deployment = _deploy(2000).shard(4, workers="inline")
    try:
        for src, dst in _pinned_pairs(2000, 200):
            deployment.router.route(src, dst)
    finally:
        deployment.close()  # type: ignore[attr-defined]


def _scale_config(size: int, shards: int) -> ExperimentConfig:
    """The scale-demo cell: one size, one trial, the Pool system only."""
    return ExperimentConfig(
        name=f"perf-scale-{size}",
        title="perf scale demo",
        network_sizes=(size,),
        events_per_node=1,
        query_count=20,
        trials=1,
        systems=("pool",),
        query_workloads=(
            QueryWorkload(
                dimensions=3,
                kind="exact",
                range_sizes="uniform",
                label="exact/uniform",
            ),
        ),
        shards=shards,
        shard_workers="inline",
    )


def _bench_cell_900() -> None:
    _run_cell(_scale_config(900, 1), 0, 900, 0)


#: The pinned grid: name -> zero-argument workload.  Keep every cell in
#: the low seconds so the CI job stays cheap; scale coverage lives in the
#: (manual) ``--scale-demo`` run.
PERF_CELLS: dict[str, Callable[[], None]] = {
    "deploy-2000": _bench_deploy_2000,
    "route-900": _bench_route_900,
    "route-2000-shards4": _bench_route_2000_shards4,
    "cell-900": _bench_cell_900,
}


def run_grid(
    calibration: float,
    repeats: int = 2,
    names: Iterable[str] | None = None,
) -> dict[str, dict[str, float]]:
    """Time pinned cells (best of ``repeats``): name -> seconds/normalized.

    Best-of rather than mean: scheduler noise only ever *adds* time, so
    the minimum is the stable estimate of the work itself — the quantity
    the regression tripwire should trend.  ``names`` restricts the run to
    a subset (the retry pass in ``--check``).
    """
    cells: dict[str, dict[str, float]] = {}
    for name, workload in PERF_CELLS.items():
        if names is not None and name not in names:
            continue
        seconds = float("inf")
        for _ in range(repeats):
            started = perf_counter()
            workload()
            seconds = min(seconds, perf_counter() - started)
        cells[name] = {
            "seconds": round(seconds, 4),
            "normalized": round(seconds / calibration, 2),
        }
    return cells


def run_scale_demo(size: int = 10_000, shards: int = 4) -> dict[str, Any]:
    """Time the 10⁴-node grid cell single-process and sharded.

    The single-process time is the recorded wall-clock budget; the
    sharded run must beat it (the per-step greedy memoization in the
    shard workers is what makes one core faster, and worker processes
    scale it out on multi-core hosts).
    """
    started = perf_counter()
    _run_cell(_scale_config(size, 1), 0, size, 0)
    budget_seconds = perf_counter() - started
    started = perf_counter()
    _run_cell(_scale_config(size, shards), 0, size, 0)
    sharded_seconds = perf_counter() - started
    return {
        "size": size,
        "shards": shards,
        "shard_workers": "inline",
        "budget_seconds": round(budget_seconds, 2),
        "seconds": round(sharded_seconds, 2),
        "under_budget": sharded_seconds < budget_seconds,
    }


def capture_profile_records() -> list[dict[str, Any]]:
    """Telemetry records of the pinned ``cell-900`` cell (seed 0).

    The same configuration :func:`_bench_cell_900` times, re-run with a
    span recorder attached; deterministic, so two builds of the same code
    produce byte-identical records and ``obs.diff`` of one against the
    committed baseline isolates genuine structural drift.
    """
    _, records = _run_cell(_scale_config(900, 1), 0, 900, 0, telemetry=True)
    return records


def write_profile_baseline(
    path: Path = _PROFILE_BASELINE_PATH,
) -> Path:
    """Capture and write the committed profile baseline."""
    from repro.telemetry.export import write_telemetry_jsonl

    path.parent.mkdir(parents=True, exist_ok=True)
    return write_telemetry_jsonl(path, capture_profile_records(), seed=0)


def attribute_regression(
    baseline_path: Path = _PROFILE_BASELINE_PATH,
    *,
    out_json: Path = _ATTRIBUTION_PATH,
    out_trace: Path = _ATTRIBUTION_TRACE_PATH,
) -> dict[str, Any] | None:
    """Diff the committed profile baseline against a fresh capture.

    Returns the ``obs.diff`` verdict — also written to ``out_json``, with
    the fresh capture's Chrome-trace flamegraph next to it — or ``None``
    when no baseline is committed.  A *clean* verdict on a failed
    wall-clock check means the work performed did not change: the
    regression is a constant-factor slowdown (machine, interpreter, or
    per-operation cost), not a new phase doing more work.
    """
    from repro.obs.diff import diff_records
    from repro.obs.flame import chrome_trace
    from repro.telemetry.export import read_telemetry_jsonl

    if not baseline_path.is_file():
        return None
    _header, baseline_records = read_telemetry_jsonl(baseline_path)
    candidate_records = capture_profile_records()
    verdict = diff_records(baseline_records, candidate_records)
    out_json.parent.mkdir(parents=True, exist_ok=True)
    out_json.write_text(
        json.dumps(verdict, indent=2, sort_keys=True) + "\n", "utf-8"
    )
    out_trace.write_text(
        json.dumps(
            chrome_trace(candidate_records),
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\n",
        "utf-8",
    )
    return verdict


def _load(path: Path) -> dict[str, Any]:
    if not path.is_file():
        return {"schema": PERF_SCHEMA, "baseline": None, "scale_demo": None, "history": []}
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema") != PERF_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {PERF_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    return payload


def _save(path: Path, payload: dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", "utf-8")


def check_against_baseline(
    baseline: dict[str, Any], entry: dict[str, Any]
) -> dict[str, str]:
    """Regression messages by cell name (empty = pass).

    A cell regresses only when its normalized time AND its raw seconds
    both exceed baseline × threshold (see :data:`REGRESSION_THRESHOLD`
    for why the conjunction).
    """
    problems: dict[str, str] = {}
    baseline_cells: dict[str, dict[str, float]] = baseline.get("cells", {})
    for name, measured in sorted(entry["cells"].items()):
        reference = baseline_cells.get(name)
        if reference is None:
            continue  # new cell: no baseline yet, nothing to regress from
        allowed = reference["normalized"] * REGRESSION_THRESHOLD
        allowed_seconds = reference["seconds"] * REGRESSION_THRESHOLD
        if (
            measured["normalized"] > allowed
            and measured["seconds"] > allowed_seconds
        ):
            problems[name] = (
                f"{name}: normalized {measured['normalized']:.2f} > "
                f"{allowed:.2f} and {measured['seconds']:.3f}s > "
                f"{allowed_seconds:.3f}s (baseline "
                f"{reference['normalized']:.2f} / {reference['seconds']:.3f}s "
                f"+{(REGRESSION_THRESHOLD - 1) * 100:.0f}%)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf",
        description="pinned micro-benchmark grid with a regression tripwire",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=str(_DEFAULT_PATH),
        help=f"trend file (default {_DEFAULT_PATH})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on a >20%% normalized regression vs the baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record this run as the committed baseline",
    )
    parser.add_argument(
        "--update-profile-baseline",
        action="store_true",
        help=(
            f"re-capture {_PROFILE_BASELINE_PATH} (the telemetry profile "
            "of the cell-900 cell that --check diffs for attribution)"
        ),
    )
    parser.add_argument(
        "--scale-demo",
        action="store_true",
        help="also run the 10^4-node sharded scale demo (slow)",
    )
    parser.add_argument(
        "--label",
        default=None,
        help="history entry label (default: $GITHUB_SHA or 'local')",
    )
    args = parser.parse_args(argv)
    path = Path(args.json)
    payload = _load(path)

    label = args.label or os.environ.get("GITHUB_SHA", "local")[:12]
    calibration = calibrate()
    cells = run_grid(calibration)
    entry: dict[str, Any] = {
        "label": label,
        "calibration_seconds": round(calibration, 5),
        "cells": cells,
    }
    payload.setdefault("history", []).append(entry)
    for name, cell in sorted(cells.items()):
        print(
            f"{name:20s} {cell['seconds']:8.3f}s  "
            f"normalized {cell['normalized']:8.2f}"
        )

    if args.scale_demo:
        demo = run_scale_demo()
        payload["scale_demo"] = demo
        print(
            f"scale demo: {demo['size']} nodes, shards={demo['shards']} "
            f"({demo['shard_workers']}): {demo['seconds']:.2f}s vs "
            f"single-process budget {demo['budget_seconds']:.2f}s "
            f"({'UNDER' if demo['under_budget'] else 'OVER'} budget)"
        )

    # Attribution artifacts live next to the trend file, so a --json
    # override (the tests, ad-hoc runs) never touches results/.
    profile_baseline = path.parent / _PROFILE_BASELINE_PATH.name
    if args.update_profile_baseline:
        profile_path = write_profile_baseline(profile_baseline)
        print(f"profile baseline written to {profile_path}", file=sys.stderr)

    exit_code = 0
    if args.update_baseline or payload.get("baseline") is None:
        payload["baseline"] = {
            "label": label,
            "calibration_seconds": entry["calibration_seconds"],
            "cells": cells,
        }
        print("baseline updated")
    elif args.check:
        problems = check_against_baseline(payload["baseline"], entry)
        if problems:
            # A shared CI box inflates individual timings well beyond 20%;
            # a genuine regression survives a calmer second look, noise
            # does not.  Retry only the suspect cells, keep the best time.
            print(
                "suspected regressions, retrying: "
                + ", ".join(sorted(problems)),
                file=sys.stderr,
            )
            retried = run_grid(calibrate(), repeats=3, names=sorted(problems))
            for name, cell in retried.items():
                previous = entry["cells"][name]
                entry["cells"][name] = {
                    "seconds": min(cell["seconds"], previous["seconds"]),
                    "normalized": min(
                        cell["normalized"], previous["normalized"]
                    ),
                }
            problems = check_against_baseline(payload["baseline"], entry)
        for problem in problems.values():
            print(f"REGRESSION {problem}", file=sys.stderr)
        if problems:
            exit_code = 1
            attribution_json = path.parent / _ATTRIBUTION_PATH.name
            attribution_trace = path.parent / _ATTRIBUTION_TRACE_PATH.name
            verdict = attribute_regression(
                profile_baseline,
                out_json=attribution_json,
                out_trace=attribution_trace,
            )
            if verdict is None:
                print(
                    f"attribution skipped: no {profile_baseline} "
                    "baseline (run --update-profile-baseline and commit it)",
                    file=sys.stderr,
                )
            else:
                from repro.obs.diff import render_verdict

                print(
                    f"attribution ({attribution_json}, flamegraph "
                    f"{attribution_trace}):",
                    file=sys.stderr,
                )
                if verdict["clean"]:
                    print(
                        "  profile diff clean: constant-factor slowdown, "
                        "no structural change in the work performed",
                        file=sys.stderr,
                    )
                else:
                    for line in render_verdict(verdict).splitlines():
                        print(f"  {line}", file=sys.stderr)
        else:
            print("perf check: all cells within threshold")

    _save(path, payload)
    print(f"trend appended to {path}", file=sys.stderr)
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
