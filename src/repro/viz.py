"""Plain-text rendering of deployments, Pools, routes and query plans.

Terminal-friendly diagnostics for interactive use and bug reports: render
the field as a character grid where each character cell aggregates a
block of the deployment, overlaying node density, Pool footprints, index
nodes, GPSR paths and the cells a query touches.  No plotting
dependencies — the output pastes into an issue tracker.

Legend (later layers overwrite earlier ones):

* ``.``   empty area, ``1``–``9`` node count in the block
* ``a``/``b``/``c``… footprint of Pool 1/2/3…
* ``A``/``B``/``C``… a *relevant* cell of that Pool for the given query
* ``*``   a hop of a rendered route, ``S``/``D`` its endpoints
* ``X``   a failed node
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.core.system import PoolSystem
from repro.core.resolve import relevant_cells
from repro.events.queries import RangeQuery
from repro.exceptions import ConfigurationError
from repro.network.topology import Topology

__all__ = ["FieldCanvas", "render_topology", "render_pools", "render_route"]


class FieldCanvas:
    """A character raster over a topology's field.

    Parameters
    ----------
    topology:
        Supplies the field extent and node positions.
    width:
        Canvas width in characters; the height follows the field's aspect
        ratio.  Rows print top-down (north up).
    """

    def __init__(self, topology: Topology, width: int = 60) -> None:
        if width < 8:
            raise ConfigurationError(f"canvas width must be >= 8, got {width}")
        self.topology = topology
        field = topology.field
        self.width = width
        self.height = max(4, round(width * field.height / field.width / 2))
        # /2: terminal glyphs are ~twice as tall as wide.
        self._cells: list[list[str]] = [
            ["."] * width for _ in range(self.height)
        ]

    # ------------------------------------------------------------------ #
    # Coordinate mapping                                                 #
    # ------------------------------------------------------------------ #

    def raster_of(self, point: tuple[float, float]) -> tuple[int, int]:
        """(row, column) of a field coordinate, clamped to the canvas."""
        field = self.topology.field
        col = int((point[0] - field.x_min) / field.width * self.width)
        row = int((point[1] - field.y_min) / field.height * self.height)
        col = min(max(col, 0), self.width - 1)
        row = min(max(row, 0), self.height - 1)
        return (self.height - 1 - row, col)  # north up

    def plot(self, point: tuple[float, float], glyph: str) -> None:
        """Write one glyph at a field coordinate."""
        row, col = self.raster_of(point)
        self._cells[row][col] = glyph[0]

    # ------------------------------------------------------------------ #
    # Layers                                                             #
    # ------------------------------------------------------------------ #

    def layer_density(self) -> "FieldCanvas":
        """Node count per raster block (1-9, '+' for more)."""
        counts: Counter[tuple[int, int]] = Counter()
        for node in self.topology:
            counts[self.raster_of(self.topology.position(node))] += 1
        for (row, col), count in counts.items():
            self._cells[row][col] = str(count) if count <= 9 else "+"
        return self

    def layer_failed(self) -> "FieldCanvas":
        """Mark failed nodes with 'X'."""
        for node in self.topology.excluded:
            self.plot(self.topology.position(node), "X")
        return self

    def layer_pools(
        self, system: PoolSystem, query: RangeQuery | None = None
    ) -> "FieldCanvas":
        """Pool footprints in lowercase; relevant cells uppercase."""
        for layout in system.pools:
            glyph = chr(ord("a") + (layout.index % 26))
            for cell in layout.cells():
                self.plot(system.grid.center(cell), glyph)
            if query is not None:
                for cell in relevant_cells(query, layout):
                    self.plot(system.grid.center(cell), glyph.upper())
        return self

    def layer_route(self, path: Sequence[int]) -> "FieldCanvas":
        """A node path: '*' hops with 'S'ource and 'D'estination."""
        if not path:
            return self
        for node in path[1:-1]:
            self.plot(self.topology.position(node), "*")
        self.plot(self.topology.position(path[0]), "S")
        if len(path) > 1:
            self.plot(self.topology.position(path[-1]), "D")
        return self

    def layer_nodes(self, nodes: Sequence[int], glyph: str) -> "FieldCanvas":
        """Mark arbitrary nodes (e.g. index nodes, splitters)."""
        for node in nodes:
            self.plot(self.topology.position(node), glyph)
        return self

    # ------------------------------------------------------------------ #
    # Output                                                             #
    # ------------------------------------------------------------------ #

    def render(self, title: str = "") -> str:
        """The canvas as a bordered multi-line string."""
        border = "+" + "-" * self.width + "+"
        lines: list[str] = []
        if title:
            lines.append(title)
        lines.append(border)
        lines.extend("|" + "".join(row) + "|" for row in self._cells)
        lines.append(border)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def render_topology(topology: Topology, width: int = 60) -> str:
    """Node-density map of a deployment."""
    return (
        FieldCanvas(topology, width)
        .layer_density()
        .layer_failed()
        .render(
            f"{topology.alive_count} nodes, field "
            f"{topology.field.width:.0f}x{topology.field.height:.0f} m"
        )
    )


def render_pools(
    system: PoolSystem, query: RangeQuery | None = None, width: int = 60
) -> str:
    """Pool footprints (and, optionally, a query's relevant cells)."""
    title = "Pool layout" + (f" + relevant cells for {query}" if query else "")
    return (
        FieldCanvas(system.network.topology, width)
        .layer_density()
        .layer_pools(system, query)
        .render(title)
    )


def render_route(topology: Topology, path: Sequence[int], width: int = 60) -> str:
    """One GPSR path over the density map."""
    title = f"route {path[0]} -> {path[-1]} ({len(path) - 1} hops)" if path else "route"
    return (
        FieldCanvas(topology, width)
        .layer_density()
        .layer_route(path)
        .render(title)
    )
