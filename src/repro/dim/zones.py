"""DIM zones: matched k-d splits of the field and of the value space.

DIM recursively halves the deployment field (alternately by x and y) until
every region contains at most one sensor; a region's binary *zone code*
records the left/right choices.  The **same** code simultaneously denotes
a box in the k-dimensional value space: bit ``i`` of the code halves value
dimension ``i mod k``.  This double meaning is the whole trick — an
event's values determine a code, the code determines a region, and GPSR
delivers to whoever owns that region.

Zone-code ↔ value-range convention
----------------------------------
We use the *straight* binary descent (bit 0 = lower half on both sides of
the correspondence).  The paper's Figure 1(b) additionally applies DIM's
locality-preserving reflection inside some subtrees, whose exact
convention the Pool paper does not define (it cites DIM and "omits the
details"); the two conventions produce isomorphic partitions and
identical message counts — see DESIGN.md "Known deviations".

Empty zones
-----------
A split can isolate a region containing no sensor.  Such a leaf is
*adopted* by the network node closest to the region's center — the node a
GPSR packet addressed into the empty region would be delivered to, which
is how real DIM handles empty zones (the neighboring node on the
enclosing perimeter stores on the zone's behalf).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.events.queries import RangeQuery
from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.geometry import Rect
from repro.network.topology import Topology

__all__ = ["Zone", "ZoneTree"]

ValueBox = tuple[tuple[float, float], ...]


@dataclass(slots=True)
class Zone:
    """One node of the zone tree.

    Attributes
    ----------
    code:
        Binary zone code (``""`` for the root).
    geo:
        Geographic region this code addresses.
    value_box:
        The k-dimensional value hyper-rectangle this code addresses.
    owner:
        For leaves: the node id responsible for the zone.  ``-1`` on
        internal zones.
    residents:
        Node ids physically inside ``geo`` (leaves have 0 or 1 except when
        the depth guard triggers on near-coincident nodes).
    """

    code: str
    geo: Rect
    value_box: ValueBox
    owner: int = -1
    residents: tuple[int, ...] = ()
    low: "Zone | None" = None
    high: "Zone | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.low is None

    @property
    def depth(self) -> int:
        return len(self.code)

    def overlaps(self, query: RangeQuery) -> bool:
        """Whether the zone's value box intersects the query box (closed)."""
        for (lo, hi), (q_lo, q_hi) in zip(self.value_box, query.bounds):
            if hi < q_lo or q_hi < lo:
                return False
        return True

    def contains_values(self, values: tuple[float, ...]) -> bool:
        """Whether a value vector falls inside this zone's value box.

        Boxes are half-open ``[lo, hi)`` per dimension except at the top of
        the unit interval, so every value vector belongs to exactly one
        leaf.
        """
        for (lo, hi), v in zip(self.value_box, values):
            if v < lo:
                return False
            if v > hi or (v == hi and hi < 1.0):
                return False
        return True


def _split_value_box(box: ValueBox, dim: int) -> tuple[ValueBox, ValueBox]:
    lo, hi = box[dim]
    mid = (lo + hi) / 2.0
    low = box[:dim] + ((lo, mid),) + box[dim + 1 :]
    high = box[:dim] + ((mid, hi),) + box[dim + 1 :]
    return low, high


class ZoneTree:
    """The complete DIM zone partition for one deployment.

    Parameters
    ----------
    topology:
        The deployed network; the tree splits until every zone holds at
        most one node.
    dimensions:
        Event dimensionality ``k``.
    max_depth:
        Split-depth guard for (nearly) coincident nodes.
    """

    def __init__(
        self, topology: Topology, dimensions: int, *, max_depth: int = 48
    ) -> None:
        if dimensions < 1:
            raise ConfigurationError(f"dimensions must be >= 1, got {dimensions}")
        if max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        self.topology = topology
        self.dimensions = dimensions
        self.max_depth = max_depth
        root_box: ValueBox = tuple((0.0, 1.0) for _ in range(dimensions))
        self.root = Zone(
            code="",
            geo=topology.field,
            value_box=root_box,
            residents=tuple(range(topology.size)),
        )
        self._leaves: list[Zone] = []
        self._build(self.root)

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #

    def _build(self, zone: Zone) -> None:
        if len(zone.residents) <= 1 or zone.depth >= self.max_depth:
            self._finalize_leaf(zone)
            return
        depth = zone.depth
        if depth % 2 == 0:
            geo_low, geo_high = zone.geo.split_x()
            axis = 0
        else:
            geo_low, geo_high = zone.geo.split_y()
            axis = 1
        value_low, value_high = _split_value_box(zone.value_box, depth % self.dimensions)
        positions = self.topology.positions
        geo_mid = (geo_low.x_max, geo_low.y_max)[axis]
        low_residents = tuple(
            n for n in zone.residents if positions[n][axis] < geo_mid
        )
        high_residents = tuple(
            n for n in zone.residents if positions[n][axis] >= geo_mid
        )
        zone.low = Zone(
            code=zone.code + "0",
            geo=geo_low,
            value_box=value_low,
            residents=low_residents,
        )
        zone.high = Zone(
            code=zone.code + "1",
            geo=geo_high,
            value_box=value_high,
            residents=high_residents,
        )
        self._build(zone.low)
        self._build(zone.high)

    def _finalize_leaf(self, zone: Zone) -> None:
        if zone.residents:
            # The resident closest to the zone center owns it (ties by id).
            center = zone.geo.center
            zone.owner = min(
                zone.residents,
                key=lambda n: (
                    (self.topology.positions[n][0] - center.x) ** 2
                    + (self.topology.positions[n][1] - center.y) ** 2,
                    n,
                ),
            )
        else:
            # Empty zone: adopted by the nearest node (GPSR's delivery
            # target for packets addressed into the region).
            zone.owner = self.topology.closest_node(zone.geo.center)
        self._leaves.append(zone)

    # ------------------------------------------------------------------ #
    # Lookups                                                            #
    # ------------------------------------------------------------------ #

    @property
    def leaves(self) -> tuple[Zone, ...]:
        """All leaf zones (the actual partition)."""
        return tuple(self._leaves)

    def __len__(self) -> int:
        return len(self._leaves)

    def leaf_for_values(self, values: tuple[float, ...]) -> Zone:
        """The unique leaf whose value box contains ``values``.

        This *is* DIM's event-to-zone hash: descend the tree taking the
        lower/upper half of dimension ``depth mod k`` at each level.
        """
        if len(values) != self.dimensions:
            raise DimensionMismatchError(self.dimensions, len(values), "event")
        zone = self.root
        while not zone.is_leaf:
            dim = zone.depth % self.dimensions
            lo, hi = zone.value_box[dim]
            mid = (lo + hi) / 2.0
            assert zone.low is not None and zone.high is not None
            zone = zone.high if values[dim] >= mid else zone.low
        return zone

    def leaf_by_code(self, code: str) -> Zone:
        """The leaf (or deepest existing ancestor zone) for a code string."""
        zone = self.root
        for bit in code:
            if zone.is_leaf:
                break
            assert zone.low is not None and zone.high is not None
            zone = zone.high if bit == "1" else zone.low
        return zone

    def zones_for_query(self, query: RangeQuery) -> list[Zone]:
        """All leaf zones whose value box overlaps ``query``.

        This is DIM's range-query decomposition: a simultaneous descent of
        the value-space k-d tree pruning subtrees disjoint from the query
        hyper-rectangle.  The number of returned zones grows with network
        size for a fixed query — the scalability weakness the paper's
        Figure 6 demonstrates.
        """
        if query.dimensions != self.dimensions:
            raise DimensionMismatchError(self.dimensions, query.dimensions, "query")
        result: list[Zone] = []
        stack = [self.root]
        while stack:
            zone = stack.pop()
            if not zone.overlaps(query):
                continue
            if zone.is_leaf:
                result.append(zone)
            else:
                assert zone.low is not None and zone.high is not None
                stack.append(zone.high)
                stack.append(zone.low)
        result.sort(key=lambda z: z.code)
        return result

    def iter_zones(self) -> Iterator[Zone]:
        """Depth-first iteration over every zone (internal and leaf)."""
        stack = [self.root]
        while stack:
            zone = stack.pop()
            yield zone
            if not zone.is_leaf:
                assert zone.low is not None and zone.high is not None
                stack.append(zone.high)
                stack.append(zone.low)

    def owners_for_query(self, query: RangeQuery) -> list[int]:
        """Deduplicated, sorted owner node ids of the query's zones."""
        return sorted({zone.owner for zone in self.zones_for_query(query)})
