"""DIM as a runnable data-centric storage system.

Glues the :class:`~repro.dim.zones.ZoneTree` to a
:class:`~repro.network.network.Network`: events route to their zone owner
with GPSR, range queries fan out along a merged forwarding tree to every
overlapping zone owner and the qualifying events aggregate back to the
sink.  Implements the :class:`~repro.dcs.DataCentricStore` protocol so the
benchmark harness can drive DIM and Pool identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.aggregates import AggregateKind, AggregateState
from repro.dcs import (
    AggregateResult,
    InsertReceipt,
    PartialResult,
    QueryResult,
    resolve_result,
)
from repro.exceptions import ConfigurationError
from repro.dim.zones import Zone, ZoneTree
from repro.events.event import Event
from repro.events.queries import RangeQuery
from repro.exceptions import DimensionMismatchError, UnreachableError
from repro.exec import Execution, QueryPlan, run_staged
from repro.network.messages import MessageCategory
from repro.network.network import Network

__all__ = ["DimIndex", "DimQueryDetail"]


@dataclass(slots=True)
class DimQueryDetail:
    """DIM-specific query diagnostics attached to a query result."""

    zone_codes: tuple[str, ...]
    owner_nodes: tuple[int, ...]

    @property
    def zones_visited(self) -> int:
        return len(self.zone_codes)


class DimIndex:
    """The DIM baseline over a deployed network.

    Parameters
    ----------
    network:
        Communication substrate.
    dimensions:
        Event dimensionality ``k``.
    """

    def __init__(self, network: Network, dimensions: int) -> None:
        self.network = network.scope("dim")
        self.dimensions = dimensions
        self.tree = ZoneTree(network.topology, dimensions)
        # Events stored per leaf zone code (a physical node may own
        # several zones; zone granularity keeps queries precise).
        self._storage: dict[str, list[Event]] = {}
        self._event_count = 0
        # Called after every successfully stored event with
        # (zone_code, event, owner_node) — zone codes are the native cell
        # identity DIM plans resolve to, so the serve-layer cache
        # invalidates on exactly the zones a cached plan covers.
        self.insert_listeners: list[Callable[[str, Event, int], None]] = []

    # ------------------------------------------------------------------ #
    # DataCentricStore protocol                                          #
    # ------------------------------------------------------------------ #

    def insert(self, event: Event, source: int | None = None) -> InsertReceipt:
        """Route ``event`` from its detecting node to its zone owner."""
        if event.dimensions != self.dimensions:
            raise DimensionMismatchError(self.dimensions, event.dimensions)
        leaf = self.tree.leaf_for_values(event.values)
        src = source if source is not None else event.source
        if src is None:
            src = leaf.owner  # locally detected at the owner: zero hops
        try:
            path = self.network.unicast(MessageCategory.INSERT, src, leaf.owner)
        except UnreachableError as err:
            return InsertReceipt(
                home_node=leaf.owner,
                hops=max(len(err.partial_path) - 1, 0),
                detail=leaf.code,
                delivered=False,
            )
        self._storage.setdefault(leaf.code, []).append(event)
        self._event_count += 1
        for listener in self.insert_listeners:
            listener(leaf.code, event, leaf.owner)
        return InsertReceipt(
            home_node=leaf.owner, hops=len(path) - 1, detail=leaf.code
        )

    def query(self, sink: int, query: RangeQuery) -> QueryResult:
        """Execute a range query issued at ``sink``.

        1. Decompose the query into overlapping leaf zones (value k-d
           descent — done at the sink, which knows the zone structure).
        2. Forward the query to every distinct zone owner along a merged
           GPSR tree.
        3. Each owner filters its zone storage; replies aggregate back up
           the same tree.

        Thin compatibility wrapper over the staged pipeline
        (:meth:`plan_query` / :meth:`execute_plan` / :meth:`fold_replies`).
        """
        return run_staged(self, sink, query)

    def plan_query(self, sink: int, query: RangeQuery) -> QueryPlan:
        """Pure resolving: the value k-d descent at the sink, zero messages."""
        zones = self.tree.zones_for_query(query)
        owners = sorted({zone.owner for zone in zones})
        return QueryPlan(
            system="dim",
            sink=sink,
            query=query,
            cells=tuple(zone.code for zone in zones),
            destinations=tuple(owners),
            share_key=("dim", sink, tuple(owners)),
            detail=tuple(zones),
        )

    def execute_plan(self, plan: QueryPlan) -> Execution:
        """Disseminate to the distinct zone owners; collect the replies."""
        if plan.is_local:
            # Everything is local to the sink: no radio traffic.
            return Execution(answered=frozenset(plan.destinations))
        delivery = self.network.disseminate(
            MessageCategory.QUERY_FORWARD, plan.sink, list(plan.destinations)
        )
        answered, reply_cost = self.network.collect_up_tree(
            MessageCategory.QUERY_REPLY, delivery
        )
        return Execution(
            forward_cost=delivery.attempted_edges,
            reply_cost=reply_cost,
            depth_hops=delivery.tree.height(),
            answered=answered,
        )

    def fold_replies(self, plan: QueryPlan, execution: Execution) -> QueryResult:
        """Fold the answered zones' qualifying events into the result."""
        query: RangeQuery = plan.query
        zones: tuple[Zone, ...] = plan.detail
        owners = list(plan.destinations)
        detail = DimQueryDetail(
            zone_codes=tuple(plan.cells),
            owner_nodes=tuple(owners),
        )
        if plan.is_local:
            return QueryResult(
                events=self._collect(list(zones), query),
                forward_cost=0,
                reply_cost=0,
                visited_nodes=tuple(owners),
                detail=detail,
            )
        answered = execution.answered
        # A zone answers only when its owner's reply reached the sink.
        events = self._collect(
            [zone for zone in zones if zone.owner in answered], query
        )
        return resolve_result(
            events=events,
            forward_cost=execution.forward_cost,
            reply_cost=execution.reply_cost,
            visited_nodes=tuple(owners),
            detail=detail,
            depth_hops=execution.depth_hops,
            attempted_cells=len(zones),
            answered_cells=sum(1 for zone in zones if zone.owner in answered),
            unreachable_cells=tuple(
                zone.code for zone in zones if zone.owner not in answered
            ),
            unreachable_nodes=tuple(
                owner for owner in owners if owner not in answered
            ),
        )

    def plan_retry(
        self, plan: QueryPlan, result: QueryResult
    ) -> QueryPlan | None:
        """A restricted plan covering only a partial result's missing zones.

        Zone codes are unique, so the retry disseminates to exactly the
        owners whose replies were lost — nothing an answered zone already
        delivered is re-fetched.  Returns ``None`` when nothing is
        missing.
        """
        if not isinstance(result, PartialResult) or not result.unreachable_cells:
            return None
        missing = set(result.unreachable_cells)
        zones: tuple[Zone, ...] = plan.detail
        kept = tuple(zone for zone in zones if zone.code in missing)
        if not kept:
            return None
        owners = sorted({zone.owner for zone in kept})
        return QueryPlan(
            system="dim",
            sink=plan.sink,
            query=plan.query,
            cells=tuple(zone.code for zone in kept),
            destinations=tuple(owners),
            share_key=("dim-retry", plan.sink, tuple(owners)),
            detail=kept,
        )

    def query_span_attrs(self, result: QueryResult) -> dict[str, object]:
        """DIM attributes for the query lifecycle span."""
        return {
            "zones_visited": result.detail.zones_visited,
            "matches": result.match_count,
        }

    def close(self) -> None:
        """Detach external hooks so the deployment can be reused."""
        self.insert_listeners.clear()

    def aggregate(
        self,
        sink: int,
        query: RangeQuery,
        *,
        dimension: int = 0,
        kind: AggregateKind = AggregateKind.COUNT,
    ) -> AggregateResult:
        """In-network aggregate over the query's zones (same tree cost)."""
        if not 0 <= dimension < self.dimensions:
            raise ConfigurationError(
                f"aggregate dimension {dimension} outside 0..{self.dimensions - 1}"
            )
        result = self.query(sink, query)
        state = AggregateState.of_events(result.events, dimension)
        return AggregateResult(
            kind=kind,
            dimension=dimension,
            state=state,
            forward_cost=result.forward_cost,
            reply_cost=result.reply_cost,
            detail=result.detail,
        )

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #

    def _collect(self, zones: list[Zone], query: RangeQuery) -> list[Event]:
        matches: list[Event] = []
        for zone in zones:
            for event in self._storage.get(zone.code, ()):
                if query.matches(event):
                    matches.append(event)
        return matches

    @property
    def stored_events(self) -> int:
        """Total events currently stored."""
        return self._event_count

    def events_in_zone(self, code: str) -> tuple[Event, ...]:
        """Events stored under one zone code."""
        return tuple(self._storage.get(code, ()))

    def storage_distribution(self) -> dict[int, int]:
        """Events per *physical node* — the hotspot metric.

        Skewed workloads concentrate events in few zones, and therefore on
        few owners; this is the imbalance the paper's Section 1 holds
        against DIM.
        """
        per_node: dict[int, int] = {}
        for leaf in self.tree.leaves:
            count = len(self._storage.get(leaf.code, ()))
            if count:
                per_node[leaf.owner] = per_node.get(leaf.owner, 0) + count
        return per_node

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DimIndex(k={self.dimensions}, zones={len(self.tree)}, "
            f"events={self._event_count})"
        )
