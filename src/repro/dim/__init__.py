"""DIM — Distributed Index for Multi-dimensional data (Li et al. 2003).

The baseline system of the paper's evaluation: a k-d-tree-like partition
embedded in the sensor field.  Every sensor owns a *zone* identified by a
binary code; the same code simultaneously addresses a geographic region
and a hyper-rectangle of the value space, so events route to the zone
whose value box contains them and range queries decompose into the set of
overlapping zones.
"""

from repro.dim.zones import Zone, ZoneTree
from repro.dim.index import DimIndex

__all__ = ["Zone", "ZoneTree", "DimIndex"]
