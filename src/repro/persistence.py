"""JSON persistence for deployments, workloads and results.

Reproducibility plumbing a downstream user needs: snapshot a deployed
topology (so a bug report pins the exact node placement, not just a
seed), dump/reload event and query workloads, and round-trip experiment
results.  Everything is plain JSON — diff-able, versioned, no pickle.

Schema versioning: every document carries ``{"schema": "<kind>/1"}``;
loaders reject unknown kinds/versions instead of guessing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.bench.harness import ExperimentResult, ResultRow
from repro.events.event import Event
from repro.events.queries import RangeQuery
from repro.exceptions import ValidationError
from repro.geometry import Rect
from repro.network.topology import Topology
from repro.telemetry.export import (
    ACCEPTED_SCHEMAS,
    TELEMETRY_SCHEMA,
    validate_record,
)

__all__ = [
    "topology_to_dict",
    "topology_from_dict",
    "events_to_dict",
    "events_from_dict",
    "queries_to_dict",
    "queries_from_dict",
    "result_from_dict",
    "telemetry_to_dict",
    "telemetry_from_dict",
    "save_json",
    "load_json",
]


def _check_schema(payload: dict[str, Any], expected: str) -> None:
    schema = payload.get("schema")
    if schema != expected:
        raise ValidationError(
            f"expected schema {expected!r}, got {schema!r}; refusing to guess"
        )


# --------------------------------------------------------------------- #
# Topology                                                              #
# --------------------------------------------------------------------- #


def topology_to_dict(topology: Topology) -> dict[str, Any]:
    """Serialize a topology (positions, range, field, failures)."""
    return {
        "schema": "topology/1",
        "radio_range": topology.radio_range,
        "field": list(topology.field),
        "excluded": sorted(topology.excluded),
        "positions": [[float(x), float(y)] for x, y in topology.positions],
    }


def topology_from_dict(payload: dict[str, Any]) -> Topology:
    """Reconstruct a topology snapshot (ids and failures preserved)."""
    _check_schema(payload, "topology/1")
    return Topology(
        payload["positions"],
        radio_range=payload["radio_range"],
        field=Rect(*payload["field"]),
        excluded=frozenset(int(n) for n in payload.get("excluded", ())),
    )


# --------------------------------------------------------------------- #
# Events and queries                                                    #
# --------------------------------------------------------------------- #


def events_to_dict(events: list[Event]) -> dict[str, Any]:
    """Serialize an event workload (values, sources, sequence numbers)."""
    return {
        "schema": "events/1",
        "events": [
            {
                "values": list(event.values),
                "source": event.source,
                "seq": event.seq,
            }
            for event in events
        ],
    }


def events_from_dict(payload: dict[str, Any]) -> list[Event]:
    """Reconstruct an event workload."""
    _check_schema(payload, "events/1")
    return [
        Event(
            tuple(item["values"]),
            source=item.get("source"),
            seq=item.get("seq", 0),
        )
        for item in payload["events"]
    ]


def queries_to_dict(queries: list[RangeQuery]) -> dict[str, Any]:
    """Serialize a query workload."""
    return {
        "schema": "queries/1",
        "queries": [[list(bound) for bound in query.bounds] for query in queries],
    }


def queries_from_dict(payload: dict[str, Any]) -> list[RangeQuery]:
    """Reconstruct a query workload."""
    _check_schema(payload, "queries/1")
    return [
        RangeQuery(tuple((lo, hi) for lo, hi in bounds))
        for bounds in payload["queries"]
    ]


# --------------------------------------------------------------------- #
# Experiment results                                                    #
# --------------------------------------------------------------------- #


def result_from_dict(payload: dict[str, Any]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from ``as_dict()`` output."""
    rows: list[ResultRow] = []
    for row in payload["rows"]:
        timings = row.get("timings", {})
        rows.append(
            ResultRow(
                size=int(row["size"]),
                workload=str(row["workload"]),
                system=str(row["system"]),
                trials=int(row["trials"]),
                queries=int(row["queries"]),
                mean_cost=float(row["mean_cost"]),
                std_cost=float(row["std_cost"]),
                mean_forward=float(row["mean_forward"]),
                mean_reply=float(row["mean_reply"]),
                mean_matches=float(row["mean_matches"]),
                mean_insert_hops=float(row["mean_insert_hops"]),
                mean_visited_nodes=float(row["mean_visited_nodes"]),
                mean_depth_hops=float(row.get("mean_depth_hops", 0.0)),
                build_seconds=float(timings.get("build_seconds", 0.0)),
                insert_seconds=float(timings.get("insert_seconds", 0.0)),
                query_seconds=float(timings.get("query_seconds", 0.0)),
            )
        )
    return ExperimentResult(
        name=str(payload["name"]),
        title=str(payload["title"]),
        paper_claim=str(payload.get("paper_claim", "")),
        rows=rows,
    )


# --------------------------------------------------------------------- #
# Telemetry                                                             #
# --------------------------------------------------------------------- #


def telemetry_to_dict(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Wrap telemetry records (``ExperimentResult.telemetry``) as one
    versioned document — the single-file alternative to the JSONL export
    of :mod:`repro.telemetry.export` (same schema tag, same records)."""
    return {
        "schema": TELEMETRY_SCHEMA,
        "records": [validate_record(record) for record in records],
    }


def telemetry_from_dict(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """Unwrap a telemetry document; rejects unknown schema versions.

    Accepts every tag in
    :data:`repro.telemetry.export.ACCEPTED_SCHEMAS` — same reader policy
    as the JSONL form, so archived ``telemetry/1`` documents stay usable.
    """
    schema = payload.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        raise ValidationError(
            f"expected schema in {ACCEPTED_SCHEMAS!r}, got {schema!r}; "
            "refusing to guess"
        )
    records = payload.get("records")
    if not isinstance(records, list):
        raise ValidationError("telemetry document missing 'records' list")
    return [validate_record(record) for record in records]


# --------------------------------------------------------------------- #
# Files                                                                 #
# --------------------------------------------------------------------- #


def save_json(payload: dict[str, Any], path: str | Path) -> Path:
    """Write a document to disk (pretty-printed, stable key order)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), "utf-8")
    return path


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a document from disk."""
    return json.loads(Path(path).read_text("utf-8"))
