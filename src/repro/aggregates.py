"""Aggregate algebra for in-network aggregation.

Section 3.2.3: "The aggregate operations, which are frequently seen in
sensor network applications, can also be performed in each splitter so
that the number of events to be sent through the path can be greatly
reduced."  Section 4.1 further motivates the single-copy storage rule by
aggregate correctness (duplicates would corrupt SUM/COUNT/AVG).

This module is the pure algebra: partial states that merge associatively
and commutatively, so any tree of combiners (cell → splitter → sink)
yields the same answer as a centralized scan.  The storage systems
evaluate partials at the data and combine along their reply trees.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.events.event import Event
from repro.exceptions import QueryError, ValidationError

__all__ = ["AggregateKind", "AggregateState", "aggregate_events"]


class AggregateKind(enum.Enum):
    """The SQL-style aggregates the paper names (SUM, COUNT, AVG) plus
    the order statistics every sensor database supports."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class AggregateState:
    """A mergeable partial aggregate over one attribute.

    Carries enough for every :class:`AggregateKind` at once (sum, count,
    min, max) — the few extra floats per reply are negligible next to a
    radio header and let AVG compose correctly across merges.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    @classmethod
    def of_value(cls, value: float) -> "AggregateState":
        """The partial state of a single observation."""
        return cls(count=1, total=value, minimum=value, maximum=value)

    @classmethod
    def of_events(cls, events: list[Event], dimension: int) -> "AggregateState":
        """Fold a batch of events over one attribute dimension."""
        state = cls()
        for event in events:
            state = state.merge(cls.of_value(event.values[dimension]))
        return state

    def merge(self, other: "AggregateState") -> "AggregateState":
        """Combine two partials (associative, commutative, identity-safe)."""
        return AggregateState(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def finalize(self, kind: AggregateKind) -> float:
        """Extract the requested aggregate from the partial state.

        Raises :class:`QueryError` for AVG/MIN/MAX over zero events
        (COUNT and SUM are well defined as 0).
        """
        if kind is AggregateKind.COUNT:
            return float(self.count)
        if kind is AggregateKind.SUM:
            return self.total
        if self.is_empty:
            raise QueryError(f"{kind} is undefined over zero qualifying events")
        if kind is AggregateKind.AVG:
            return self.total / self.count
        if kind is AggregateKind.MIN:
            return self.minimum
        if kind is AggregateKind.MAX:
            return self.maximum
        raise ValidationError(f"unknown aggregate kind {kind!r}")  # pragma: no cover


def aggregate_events(
    events: list[Event], dimension: int, kind: AggregateKind
) -> float:
    """Centralized reference implementation (ground truth for tests)."""
    if events and not 0 <= dimension < events[0].dimensions:
        raise ValidationError(
            f"aggregate dimension {dimension} outside the event space"
        )
    return AggregateState.of_events(events, dimension).finalize(kind)
