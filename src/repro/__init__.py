"""Pool: data-centric storage for multi-dimensional range queries in WSNs.

A from-scratch reproduction of *Supporting Multi-Dimensional Range Query
for Sensor Networks* (Chung, Su & Lee, ICDCS 2007): the **Pool** storage
scheme, the **DIM** baseline it is evaluated against, and the full sensor-
network substrate both run on (uniform deployment, GPSR routing, GHT,
message accounting, discrete-event simulation).

Quickstart
----------
::

    from repro import (
        Network, PoolSystem, RangeQuery, deploy_uniform, generate_events,
    )

    topology = deploy_uniform(900, seed=7)
    network = Network(topology)
    pool = PoolSystem(network, dimensions=3, seed=7)

    for event in generate_events(2700, 3, seed=7, sources=list(topology)):
        pool.insert(event)

    query = RangeQuery.of((0.2, 0.3), (0.25, 0.35), (0.21, 0.24))
    result = pool.query(sink=0, query=query)
    print(result.match_count, "matches for", result.total_cost, "messages")

See ``examples/`` for richer scenarios and ``benchmarks/`` plus the
``pool-bench`` CLI for the paper's Figure 6/7 reproductions.
"""

from repro.aggregates import AggregateKind, AggregateState
from repro.baselines import ExternalStorage, LocalStorageFlooding
from repro.core import (
    Cell,
    FailureReport,
    PoolLayout,
    PoolSystem,
    ReplicationPolicy,
    SharingPolicy,
)
from repro.core.continuous import ContinuousQueryService, Subscription
from repro.core.knn import KnnResult, nearest_neighbors
from repro.dcs import (
    AggregateResult,
    DataCentricStore,
    InsertReceipt,
    QueryResult,
)
from repro.difs import DifsIndex
from repro.dim import DimIndex
from repro.events import (
    Event,
    QueryKind,
    RangeQuery,
    exact_match_queries,
    generate_events,
    partial_match_queries,
)
from repro.exceptions import ReproError
from repro.ght import GeographicHashTable
from repro.network import (
    EnergyModel,
    MessageStats,
    Network,
    Simulator,
    Topology,
    deploy_grid,
    deploy_uniform,
)
from repro.routing import GPSRRouter

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core scheme
    "PoolSystem",
    "PoolLayout",
    "Cell",
    "SharingPolicy",
    "ReplicationPolicy",
    "FailureReport",
    # extensions (paper future work)
    "AggregateKind",
    "AggregateState",
    "AggregateResult",
    "ContinuousQueryService",
    "Subscription",
    "nearest_neighbors",
    "KnnResult",
    # baselines
    "DimIndex",
    "DifsIndex",
    "GeographicHashTable",
    "LocalStorageFlooding",
    "ExternalStorage",
    # events & queries
    "Event",
    "RangeQuery",
    "QueryKind",
    "generate_events",
    "exact_match_queries",
    "partial_match_queries",
    # substrate
    "Topology",
    "Network",
    "Simulator",
    "GPSRRouter",
    "MessageStats",
    "EnergyModel",
    "deploy_uniform",
    "deploy_grid",
    # protocol types
    "DataCentricStore",
    "InsertReceipt",
    "QueryResult",
    "ReproError",
]
