"""Common interface for data-centric storage (DCS) systems.

Pool, DIM and GHT all follow the same life cycle — events are inserted at
a home node determined by their *content*, and queries are forwarded to
the nodes whose content could match — so the benchmark harness drives them
through one protocol.  The receipt/result records double as the accounting
surface: every operation reports exactly which messages it cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from repro.aggregates import AggregateKind, AggregateState
from repro.events.event import Event
from repro.events.queries import RangeQuery

__all__ = [
    "InsertReceipt",
    "QueryResult",
    "AggregateResult",
    "DataCentricStore",
]


@dataclass(slots=True)
class InsertReceipt:
    """Outcome of storing one event.

    Attributes
    ----------
    home_node:
        Physical node id now holding the event.
    hops:
        One-hop transmissions spent routing the event there.
    detail:
        System-specific placement info (Pool cell, DIM zone code, ...).
    """

    home_node: int
    hops: int
    detail: Any = None


@dataclass(slots=True)
class QueryResult:
    """Outcome of processing one query.

    ``forward_cost + reply_cost`` is the paper's query-processing metric:
    "the cost of forwarding the query to the query-relevant index nodes
    plus the cost of retrieving the qualifying events" (Section 5).
    """

    events: list[Event]
    forward_cost: int
    reply_cost: int
    visited_nodes: tuple[int, ...] = ()
    detail: Any = None
    #: Critical-path hops of the dissemination (deepest sink-to-holder
    #: chain).  Round-trip latency ≈ 2 * depth_hops * per-hop latency.
    depth_hops: int = 0

    @property
    def total_cost(self) -> int:
        """Total messages charged to this query."""
        return self.forward_cost + self.reply_cost

    def latency(self, hop_latency: float = 0.01) -> float:
        """Estimated wall-clock round trip given a per-hop latency."""
        return 2.0 * self.depth_hops * hop_latency

    @property
    def match_count(self) -> int:
        """Number of qualifying events returned."""
        return len(self.events)


@dataclass(slots=True)
class AggregateResult:
    """Outcome of an in-network aggregate query (Section 3.2.3).

    The partial states merge at branch points of the reply tree (each
    tree edge carries one fixed-size partial instead of raw events), so
    the message cost equals the range query's tree cost while the reply
    payloads shrink from O(matches) to O(1).
    """

    kind: AggregateKind
    dimension: int
    state: AggregateState
    forward_cost: int
    reply_cost: int
    detail: Any = None

    @property
    def value(self) -> float:
        """The finalized aggregate."""
        return self.state.finalize(self.kind)

    @property
    def count(self) -> int:
        """Number of qualifying events folded into the state."""
        return self.state.count

    @property
    def total_cost(self) -> int:
        return self.forward_cost + self.reply_cost


@runtime_checkable
class DataCentricStore(Protocol):
    """What the benchmark harness requires of a storage system."""

    #: Event dimensionality ``k`` the system was configured for.
    dimensions: int

    def insert(self, event: Event, source: int | None = None) -> InsertReceipt:
        """Store ``event``; ``source`` overrides ``event.source``."""
        ...

    def query(self, sink: int, query: RangeQuery) -> QueryResult:
        """Resolve and execute ``query`` issued at node ``sink``."""
        ...
