"""Common interface for data-centric storage (DCS) systems.

Pool, DIM and GHT all follow the same life cycle — events are inserted at
a home node determined by their *content*, and queries are forwarded to
the nodes whose content could match — so the benchmark harness drives them
through one protocol.  The receipt/result records double as the accounting
surface: every operation reports exactly which messages it cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from repro.aggregates import AggregateKind, AggregateState
from repro.events.event import Event
from repro.events.queries import RangeQuery

__all__ = [
    "InsertReceipt",
    "QueryResult",
    "PartialResult",
    "resolve_result",
    "AggregateResult",
    "DataCentricStore",
]


@dataclass(slots=True)
class InsertReceipt:
    """Outcome of storing one event.

    Attributes
    ----------
    home_node:
        Physical node id now holding the event.
    hops:
        One-hop transmissions spent routing the event there.
    detail:
        System-specific placement info (Pool cell, DIM zone code, ...).
    delivered:
        False when a lossy network dropped the event before it reached a
        home node (the ARQ budget of some hop was exhausted); the event
        is *not* stored anywhere and ``home_node`` is the intended home.
    """

    home_node: int
    hops: int
    detail: Any = None
    delivered: bool = True


@dataclass(slots=True)
class QueryResult:
    """Outcome of processing one query.

    ``forward_cost + reply_cost`` is the paper's query-processing metric:
    "the cost of forwarding the query to the query-relevant index nodes
    plus the cost of retrieving the qualifying events" (Section 5).
    """

    events: list[Event]
    forward_cost: int
    reply_cost: int
    visited_nodes: tuple[int, ...] = ()
    detail: Any = None
    #: Critical-path hops of the dissemination (deepest sink-to-holder
    #: chain).  Round-trip latency ≈ 2 * depth_hops * per-hop latency.
    depth_hops: int = 0

    @property
    def total_cost(self) -> int:
        """Total messages charged to this query."""
        return self.forward_cost + self.reply_cost

    def latency(self, hop_latency: float = 0.01) -> float:
        """Estimated wall-clock round trip given a per-hop latency."""
        return 2.0 * self.depth_hops * hop_latency

    @property
    def match_count(self) -> int:
        """Number of qualifying events returned."""
        return len(self.events)

    @property
    def completeness(self) -> float:
        """Fraction of query-relevant cells that answered (1.0 here)."""
        return 1.0

    @property
    def is_partial(self) -> bool:
        """Did any query-relevant cell fail to answer?"""
        return False


@dataclass(slots=True)
class PartialResult(QueryResult):
    """A query that resolved gracefully despite unreachable cells.

    When the reliability layer exhausts a hop's retry budget mid-query —
    a splitter that cannot be reached, a forwarding-tree branch that died
    in flight, a reply hop that stayed lossy — the query does *not* raise
    :class:`~repro.exceptions.DeliveryError`.  It resolves to this
    subtype carrying whatever the reachable cells answered, plus an
    honest account of what is missing.  ``events`` contains only matches
    from cells whose replies actually reached the sink.

    ``unreachable_cells`` uses each system's native cell identity (Pool
    ``Cell``, DIM zone code, DIFS leaf range, responder node id, ...).
    """

    unreachable_cells: tuple[Any, ...] = ()
    unreachable_nodes: tuple[int, ...] = ()
    attempted_cells: int = 0
    answered_cells: int = 0

    @property
    def completeness(self) -> float:
        """Fraction of query-relevant cells that answered."""
        if self.attempted_cells == 0:
            return 1.0
        return self.answered_cells / self.attempted_cells

    @property
    def is_partial(self) -> bool:
        return True


def resolve_result(
    *,
    events: list[Event],
    forward_cost: int,
    reply_cost: int,
    visited_nodes: tuple[int, ...] = (),
    detail: Any = None,
    depth_hops: int = 0,
    attempted_cells: int,
    answered_cells: int,
    unreachable_cells: tuple[Any, ...] = (),
    unreachable_nodes: tuple[int, ...] = (),
) -> QueryResult:
    """Build a :class:`QueryResult`, degrading to :class:`PartialResult`.

    Storage systems funnel their query outcomes through this helper so
    the "everything answered" case keeps returning the plain result type
    (bitwise-compatible with the lossless stack) while any shortfall
    yields a partial result with the unreachable sets attached.
    """
    if (
        answered_cells >= attempted_cells
        and not unreachable_cells
        and not unreachable_nodes
    ):
        return QueryResult(
            events=events,
            forward_cost=forward_cost,
            reply_cost=reply_cost,
            visited_nodes=visited_nodes,
            detail=detail,
            depth_hops=depth_hops,
        )
    return PartialResult(
        events=events,
        forward_cost=forward_cost,
        reply_cost=reply_cost,
        visited_nodes=visited_nodes,
        detail=detail,
        depth_hops=depth_hops,
        unreachable_cells=tuple(unreachable_cells),
        unreachable_nodes=tuple(unreachable_nodes),
        attempted_cells=attempted_cells,
        answered_cells=answered_cells,
    )


@dataclass(slots=True)
class AggregateResult:
    """Outcome of an in-network aggregate query (Section 3.2.3).

    The partial states merge at branch points of the reply tree (each
    tree edge carries one fixed-size partial instead of raw events), so
    the message cost equals the range query's tree cost while the reply
    payloads shrink from O(matches) to O(1).
    """

    kind: AggregateKind
    dimension: int
    state: AggregateState
    forward_cost: int
    reply_cost: int
    detail: Any = None

    @property
    def value(self) -> float:
        """The finalized aggregate."""
        return self.state.finalize(self.kind)

    @property
    def count(self) -> int:
        """Number of qualifying events folded into the state."""
        return self.state.count

    @property
    def total_cost(self) -> int:
        return self.forward_cost + self.reply_cost


@runtime_checkable
class DataCentricStore(Protocol):
    """What the benchmark harness requires of a storage system."""

    #: Event dimensionality ``k`` the system was configured for.
    dimensions: int

    def insert(self, event: Event, source: int | None = None) -> InsertReceipt:
        """Store ``event``; ``source`` overrides ``event.source``."""
        ...

    def query(self, sink: int, query: RangeQuery) -> QueryResult:
        """Resolve and execute ``query`` issued at node ``sink``."""
        ...
