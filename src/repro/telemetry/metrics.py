"""Metrics registry and derived hotspot/energy statistics.

:class:`MetricsRegistry` is a small counters/gauges/histograms store,
keyed by name plus sorted labels, that layers *on top of* the existing
:class:`~repro.network.radio.MessageStats` scope tree — the ledger stays
the single source of truth for message counts; the registry is a derived
snapshot taken when telemetry is collected, so the hot recording path is
untouched.

The derived views are the ones the paper's measurement story needs and
DIM's load analysis previously kept private:

* per-node load (transmissions + receptions + stored events) for *every*
  system — skew-induced imbalance is exactly what DIM suffers from and
  Pool's workload sharing targets;
* hotspot statistics over any load map: max/mean load, the Gini
  coefficient of the distribution and the top-k loaded nodes;
* per-node residual energy from :class:`~repro.network.radio.EnergyModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, TYPE_CHECKING

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.radio import EnergyModel, MessageStats

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HotspotStats",
    "MetricsRegistry",
    "gini",
    "top_k",
]


def gini(values: Iterable[int | float]) -> float:
    """Gini coefficient of a load distribution (0 = even, →1 = one hog).

    Standard rank formula over the sorted values; an empty or all-zero
    distribution is perfectly even by convention.
    """
    ordered = sorted(float(v) for v in values)
    if any(v < 0 for v in ordered):
        raise ConfigurationError("gini requires non-negative values")
    n = len(ordered)
    total = sum(ordered)
    if n == 0 or total == 0.0:
        return 0.0
    weighted = sum(rank * value for rank, value in enumerate(ordered, start=1))
    return (2.0 * weighted) / (n * total) - (n + 1) / n


def top_k(load: Mapping[int, int | float], k: int = 5) -> list[tuple[int, int | float]]:
    """The ``k`` most loaded nodes, heaviest first (ties by node id)."""
    ranked = sorted(load.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:k]


@dataclass(frozen=True, slots=True)
class HotspotStats:
    """Summary statistics of one per-node load map."""

    nodes: int
    max_load: float
    mean_load: float
    gini: float
    top: tuple[tuple[int, float], ...]

    @classmethod
    def from_load(cls, load: Mapping[int, int | float], *, k: int = 5) -> "HotspotStats":
        """Derive the hotspot view of a load map (empty map → all zeros).

        A non-empty map whose loads are *all* zero is returned as an
        explicitly even distribution (max/mean/gini of exactly ``0.0``)
        instead of leaning on float-division conventions downstream; the
        ``top`` listing still names the first ``k`` nodes (at load 0.0),
        matching the historical byte layout of exported captures.
        """
        if not load:
            return cls(nodes=0, max_load=0.0, mean_load=0.0, gini=0.0, top=())
        values = list(load.values())
        if not any(values):
            return cls(
                nodes=len(load),
                max_load=0.0,
                mean_load=0.0,
                gini=0.0,
                top=tuple((node, 0.0) for node, _count in top_k(load, k)),
            )
        return cls(
            nodes=len(load),
            max_load=float(max(values)),
            mean_load=sum(values) / len(values),
            gini=gini(values),
            top=tuple((node, float(count)) for node, count in top_k(load, k)),
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "nodes": self.nodes,
            "max": round(self.max_load, 6),
            "mean": round(self.mean_load, 6),
            "gini": round(self.gini, 6),
            "top": [[node, round(value, 6)] for node, value in self.top],
        }


def _metric_key(name: str, labels: Mapping[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass(slots=True)
class Counter:
    """A monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


@dataclass(slots=True)
class Gauge:
    """A point-in-time value (overwritten, not accumulated)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass(slots=True)
class Histogram:
    """A stream of observations with a summary view.

    Observations are retained (these registries live for one experiment
    cell), so the summary is exact rather than bucketed.
    """

    observations: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.observations.append(value)

    def summary(self) -> dict[str, float]:
        if not self.observations:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        total = sum(self.observations)
        return {
            "count": len(self.observations),
            "total": round(total, 6),
            "min": round(min(self.observations), 6),
            "max": round(max(self.observations), 6),
            "mean": round(total / len(self.observations), 6),
        }


class MetricsRegistry:
    """Get-or-create store of named, labelled metrics."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._counters.setdefault(_metric_key(name, labels), Counter())

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._gauges.setdefault(_metric_key(name, labels), Gauge())

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._histograms.setdefault(_metric_key(name, labels), Histogram())

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def as_dict(self) -> dict[str, Any]:
        """Deterministic JSON-ready snapshot (sorted metric keys)."""
        return {
            "counters": {
                key: round(counter.value, 6)
                for key, counter in sorted(self._counters.items())
            },
            "gauges": {
                key: round(gauge.value, 6)
                for key, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                key: histogram.summary()
                for key, histogram in sorted(self._histograms.items())
            },
        }

    # ------------------------------------------------------------------ #
    # Layering on the MessageStats scope tree                            #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_stats(
        cls,
        stats: "MessageStats",
        *,
        energy_model: "EnergyModel | None" = None,
        storage: Mapping[int, int] | None = None,
    ) -> "MetricsRegistry":
        """Snapshot one ledger scope (and everything below it) as metrics.

        Produces, per scope tree:

        * ``messages_total{category=...}`` counters (non-zero categories);
        * a ``node_radio_load`` histogram (tx + rx per node);
        * ``hotspot_*`` gauges over the radio load (max/mean/Gini);
        * with ``storage``, a ``node_storage_load`` histogram and
          ``storage_hotspot_*`` gauges;
        * with ``energy_model``, ``energy_min_remaining`` /
          ``energy_mean_remaining`` gauges over the per-node map.
        """
        registry = cls()
        for category, count in sorted(
            stats.snapshot().items(), key=lambda item: item[0]
        ):
            if count:
                registry.counter("messages_total", category=category).inc(count)
        tx = stats.per_node_transmissions()
        rx = stats.per_node_receptions()
        radio_load = {
            node: tx.get(node, 0) + rx.get(node, 0)
            for node in sorted(set(tx) | set(rx))
        }
        load_hist = registry.histogram("node_radio_load")
        for node in sorted(radio_load):
            load_hist.observe(float(radio_load[node]))
        radio_hotspot = HotspotStats.from_load(radio_load)
        registry.gauge("hotspot_max_load").set(radio_hotspot.max_load)
        registry.gauge("hotspot_mean_load").set(radio_hotspot.mean_load)
        registry.gauge("hotspot_gini").set(radio_hotspot.gini)
        if storage is not None:
            storage_hist = registry.histogram("node_storage_load")
            for node in sorted(storage):
                storage_hist.observe(float(storage[node]))
            storage_hotspot = HotspotStats.from_load(storage)
            registry.gauge("storage_hotspot_max_load").set(storage_hotspot.max_load)
            registry.gauge("storage_hotspot_gini").set(storage_hotspot.gini)
        if energy_model is not None:
            remaining = energy_model.per_node_remaining(stats)
            if remaining:
                values = list(remaining.values())
                registry.gauge("energy_min_remaining").set(min(values))
                registry.gauge("energy_mean_remaining").set(
                    sum(values) / len(values)
                )
            else:
                registry.gauge("energy_min_remaining").set(
                    energy_model.initial_energy
                )
                registry.gauge("energy_mean_remaining").set(
                    energy_model.initial_energy
                )
        return registry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
