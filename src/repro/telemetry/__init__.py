"""First-class observability for the reproduction.

Three cooperating pieces, all off by default and free when disabled:

* :mod:`repro.telemetry.spans` — a query-lifecycle span API.  A
  :class:`SpanRecorder` attached to a :class:`~repro.network.network.Network`
  facade collects nested spans (sink → splitter → cell fan-out →
  aggregated replies) carrying phase, system label, message cost, node
  set and wall-clock.
* :mod:`repro.telemetry.metrics` — a metrics registry (counters, gauges,
  histograms) layered on the :class:`~repro.network.radio.MessageStats`
  scope tree, with derived hotspot statistics (max/mean load, Gini
  coefficient, top-k nodes) and per-node residual-energy maps.
* :mod:`repro.telemetry.export` — deterministic JSONL export under the
  versioned ``telemetry/2`` schema (``telemetry/1`` plus per-span-kind
  ``profile`` blocks and the optional ``flight_recorder`` ring), merged
  in fixed cell order by the parallel experiment runner so ``--jobs 1``
  and ``--jobs N`` emit byte-identical files (wall-clock excluded,
  mirroring the result rows' ``include_timings=False``).

The analysis layer over these captures — flamegraph export, capture
diffing, latency percentiles, per-hop flight-recorder replay — lives in
:mod:`repro.obs`.

See ``docs/OBSERVABILITY.md`` for the full story.
"""

from repro.telemetry.export import (
    TELEMETRY_SCHEMA,
    collect_system_record,
    read_telemetry_jsonl,
    write_telemetry_jsonl,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    HotspotStats,
    MetricsRegistry,
    gini,
)
from repro.telemetry.spans import Span, SpanRecorder

__all__ = [
    "Span",
    "SpanRecorder",
    "Counter",
    "Gauge",
    "Histogram",
    "HotspotStats",
    "MetricsRegistry",
    "gini",
    "TELEMETRY_SCHEMA",
    "collect_system_record",
    "read_telemetry_jsonl",
    "write_telemetry_jsonl",
]
