"""Telemetry collection and deterministic JSONL export (``telemetry/2``).

One record per ``(experiment, size, trial, system)`` cell-slice, holding
that system's span trees, span summary, per-span-kind profile,
metrics-registry snapshot and per-node load/energy maps — plus, when the
run used ``--flight-recorder``, the bounded per-hop event ring.  The
experiment runner collects records inside each worker (they are plain
dicts, so they pickle alongside the result samples) and merges them in
fixed cell order — which is what makes a ``--jobs N`` export
byte-identical to ``--jobs 1``.

File format: JSON Lines.  The first line is a header carrying the schema
tag (``telemetry/2``) and run parameters; every following line is one
record.  All dumps use sorted keys and compact separators so identical
payloads serialize identically.

Schema history: ``telemetry/2`` adds the ``profile`` block (the
deterministic span-kind fold :mod:`repro.obs.profile` computes) and the
optional ``flight_recorder`` block.  :func:`read_telemetry_jsonl` still
accepts ``telemetry/1`` files — every v1 field kept its meaning — but
always *writes* the current schema.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TYPE_CHECKING

from repro.exceptions import ValidationError
from repro.obs.profile import profile_span_dicts
from repro.telemetry.metrics import HotspotStats, MetricsRegistry
from repro.telemetry.spans import SpanRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.network import Network

__all__ = [
    "TELEMETRY_SCHEMA",
    "ACCEPTED_SCHEMAS",
    "collect_system_record",
    "write_telemetry_jsonl",
    "read_telemetry_jsonl",
    "validate_record",
]

#: The versioned schema tag carried by every export (header line).
TELEMETRY_SCHEMA = "telemetry/2"

#: Schema tags :func:`read_telemetry_jsonl` accepts.  v1 files predate
#: the ``profile``/``flight_recorder`` blocks but are otherwise
#: field-compatible, so readers keep working on archived captures.
ACCEPTED_SCHEMAS = ("telemetry/1", "telemetry/2")


def _node_map(mapping: dict[int, int | float], *, digits: int | None = None) -> dict[str, Any]:
    """Per-node map with string keys (JSON) in deterministic node order."""
    out: dict[str, Any] = {}
    for node in sorted(mapping):
        value = mapping[node]
        out[str(node)] = round(value, digits) if digits is not None else value
    return out


def collect_system_record(
    *,
    experiment: str,
    size: int,
    trial: int,
    system: str,
    network: "Network",
    store: Any,
    recorder: SpanRecorder | None,
) -> dict[str, Any]:
    """Snapshot one system's telemetry after a cell finished running.

    ``network`` is the system's scoped facade (its ledger aggregates the
    scopes the system created beneath it); ``store`` is the system under
    test, consulted for its per-node storage distribution when it has
    one.  The returned dict is JSON-ready and seed-deterministic — span
    wall-clock is excluded (``Span.as_dict`` default).
    """
    stats = network.stats
    tx = dict(stats.per_node_transmissions())
    rx = dict(stats.per_node_receptions())
    radio_load = {
        node: tx.get(node, 0) + rx.get(node, 0) for node in sorted(set(tx) | set(rx))
    }
    distribution = getattr(store, "storage_distribution", None)
    storage: dict[int, int] = dict(distribution()) if callable(distribution) else {}
    energy = network.energy_model.per_node_remaining(stats)
    registry = MetricsRegistry.from_stats(
        stats, energy_model=network.energy_model, storage=storage
    )
    reliability = network.reliability
    if reliability is not None:
        # The delivery summary only appears when a reliability layer is
        # active, so lossless exports stay byte-identical to the seed.
        registry.counter("arq_retransmissions_total").inc(
            reliability.retransmissions
        )
        registry.counter("arq_acks_total").inc(reliability.acks)
        registry.counter("hops_failed_total").inc(reliability.failed_hops)
        registry.gauge("delivery_ratio").set(reliability.delivery_ratio)
    record: dict[str, Any] = {
        "kind": "system",
        "experiment": experiment,
        "size": size,
        "trial": trial,
        "system": system,
        "messages": {
            category: count
            for category, count in sorted(stats.snapshot().items())
            if count
        },
        "per_node": {
            "tx": _node_map(tx),
            "rx": _node_map(rx),
            "storage": _node_map(storage),
            "energy": _node_map(energy, digits=9),
        },
        "hotspot": {
            "radio": HotspotStats.from_load(radio_load).as_dict(),
            "storage": HotspotStats.from_load(storage).as_dict(),
        },
        "metrics": registry.as_dict(),
        "spans": recorder.as_dicts() if recorder is not None else [],
        "span_summary": recorder.summary() if recorder is not None else [],
    }
    if recorder is not None:
        # The deterministic span-kind fold (telemetry/2): precomputed so
        # report tooling and the perf tripwire read it without re-walking
        # trees, and byte-stable because it derives only from the spans.
        record["profile"] = [
            entry.as_dict()
            for entry in profile_span_dicts(record["spans"], default_system=system)
        ]
    flight = getattr(network, "flight_recorder", None)
    if flight is not None:
        # Only --flight-recorder runs carry the ring, so default captures
        # stay byte-identical to a build without the recorder.
        record["flight_recorder"] = flight.as_dict()
    if reliability is not None:
        record["reliability"] = reliability.snapshot()
    router = network.router
    plan = getattr(router, "plan", None)
    engine = getattr(router, "engine", None)
    if plan is not None and engine is not None:
        # Shard-aware runs describe their tiling and the engine's
        # cumulative exchange counters (the deployment — and hence the
        # engine — is shared by every system in the cell, so these are
        # snapshots of the shared engine, not per-system deltas).  The
        # telemetry merge (python -m repro.shard.merge) strips this block,
        # restoring byte-identity with the --shards 1 export.
        record["sharding"] = {
            "plan": plan.as_dict(),
            "exchange_rounds": engine.exchange_rounds,
            "boundary_messages": engine.boundary_messages,
            "packets_routed": engine.packets_routed,
        }
    return record


def validate_record(record: dict[str, Any]) -> dict[str, Any]:
    """Check the minimal shape of one telemetry record; returns it."""
    if not isinstance(record, dict):
        raise ValidationError(f"telemetry record must be an object, got {type(record).__name__}")
    for key in ("kind", "system"):
        if key not in record:
            raise ValidationError(f"telemetry record missing {key!r}: {record!r:.120}")
    return record


def _dump(payload: dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_telemetry_jsonl(
    path: str | Path,
    records: list[dict[str, Any]],
    **header_fields: Any,
) -> Path:
    """Write a header line plus one line per record; returns the path."""
    path = Path(path)
    header = {"schema": TELEMETRY_SCHEMA, "records": len(records), **header_fields}
    lines = [_dump(header)]
    lines.extend(_dump(validate_record(record)) for record in records)
    path.write_text("\n".join(lines) + "\n", "utf-8")
    return path


def read_telemetry_jsonl(
    path: str | Path,
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Load ``(header, records)``; rejects unknown schema versions.

    Accepts every tag in :data:`ACCEPTED_SCHEMAS` (currently v1 and v2),
    so archived ``telemetry/1`` captures stay readable; writers always
    emit :data:`TELEMETRY_SCHEMA`.
    """
    text = Path(path).read_text("utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValidationError(f"{path}: empty telemetry file")
    header = json.loads(lines[0])
    schema = header.get("schema") if isinstance(header, dict) else None
    if schema not in ACCEPTED_SCHEMAS:
        raise ValidationError(
            f"expected schema in {ACCEPTED_SCHEMAS!r}, got {schema!r}; "
            "refusing to guess"
        )
    records = [validate_record(json.loads(line)) for line in lines[1:]]
    return header, records
