"""Query-lifecycle spans.

A :class:`Span` is one phase of one operation — the sink-to-splitter leg
of a query, a Pool's cell fan-out, the aggregated reply climb — carrying
the phase name, the owning system's label, the message cost charged
inside it, the node ids it touched and its wall-clock window.  Spans
nest: a :class:`SpanRecorder` keeps an open-span stack, so instrumented
layers (``core/system.py``, ``core/resolve.py``, ``routing/multicast.py``,
``core/protocol.py``, the baselines) produce one tree per operation
without threading parent handles around.

Telemetry is opt-in exactly like the message tracer: a facade without a
recorder attached (``Network.telemetry is None``) costs one ``if`` per
instrumented operation and never allocates a span.

Determinism: everything a span carries except its wall-clock window is a
pure function of the seed, so :meth:`Span.as_dict` excludes timings by
default — the form the serial-vs-parallel equivalence guarantees cover
(mirroring ``ResultRow.as_dict(include_timings=False)``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator

__all__ = ["Span", "SpanRecorder"]


@dataclass(slots=True)
class Span:
    """One phase of one operation, possibly with nested children."""

    name: str
    phase: str
    system: str | None = None
    messages: int = 0
    nodes: set[int] = field(default_factory=set)
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    started_at: float = 0.0
    ended_at: float = 0.0

    @property
    def seconds(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        if self.ended_at <= self.started_at:
            return 0.0
        return self.ended_at - self.started_at

    def add_messages(self, count: int) -> None:
        """Charge ``count`` one-hop transmissions to this span."""
        self.messages += count

    def add_nodes(self, nodes: Iterable[int]) -> None:
        """Mark node ids as touched by this span."""
        self.nodes.update(nodes)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self, *, include_timings: bool = False) -> dict[str, Any]:
        """JSON-ready view (sorted node list, nested children).

        ``include_timings=True`` adds the wall-clock duration; the
        default form is seed-deterministic and what the JSONL export
        writes.
        """
        payload: dict[str, Any] = {
            "name": self.name,
            "phase": self.phase,
            "system": self.system,
            "messages": self.messages,
            "nodes": sorted(self.nodes),
        }
        if self.attrs:
            payload["attrs"] = dict(sorted(self.attrs.items()))
        if self.children:
            payload["children"] = [
                child.as_dict(include_timings=include_timings)
                for child in self.children
            ]
        if include_timings:
            payload["seconds"] = round(self.seconds, 6)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, phase={self.phase!r}, "
            f"messages={self.messages}, children={len(self.children)})"
        )


class SpanRecorder:
    """Collects span trees for one system (or one facade).

    Parameters
    ----------
    label:
        Default ``system`` stamp for spans recorded here — the harness
        passes the system-under-test's registry name (``"pool"``,
        ``"dim"``, ...), so merged exports attribute every span.
    clock:
        Monotonic time source; injectable for tests.
    """

    __slots__ = ("label", "roots", "_stack", "_clock")

    def __init__(
        self,
        label: str | None = None,
        *,
        clock: Callable[[], float] = perf_counter,
    ) -> None:
        self.label = label
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._clock = clock

    # ------------------------------------------------------------------ #
    # Recording                                                          #
    # ------------------------------------------------------------------ #

    @contextmanager
    def span(
        self,
        name: str,
        *,
        phase: str,
        system: str | None = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Open a nested span for the duration of the ``with`` block."""
        opened = Span(
            name=name,
            phase=phase,
            system=system if system is not None else self.label,
            attrs=dict(attrs),
            started_at=self._clock(),
        )
        if self._stack:
            self._stack[-1].children.append(opened)
        else:
            self.roots.append(opened)
        self._stack.append(opened)
        try:
            yield opened
        finally:
            opened.ended_at = self._clock()
            self._stack.pop()

    def record(
        self,
        name: str,
        *,
        phase: str,
        messages: int = 0,
        nodes: Iterable[int] = (),
        system: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-finished leaf span under the current parent.

        For instrumentation points that know their outcome upfront (the
        sink-side resolve step, a frozen multicast tree) and have no
        interior structure to nest.
        """
        now = self._clock()
        leaf = Span(
            name=name,
            phase=phase,
            system=system if system is not None else self.label,
            messages=messages,
            nodes=set(nodes),
            attrs=dict(attrs),
            started_at=now,
            ended_at=now,
        )
        if self._stack:
            self._stack[-1].children.append(leaf)
        else:
            self.roots.append(leaf)
        return leaf

    # ------------------------------------------------------------------ #
    # Inspection                                                         #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return sum(1 for _ in self.walk())

    def walk(self) -> Iterator[Span]:
        """Every recorded span, depth-first over all roots."""
        for root in self.roots:
            yield from root.walk()

    def summary(self) -> list[dict[str, Any]]:
        """Aggregate per (system, phase, name): count, messages, nodes.

        ``nodes`` is the size of the union of the node sets — how much of
        the field that phase touched overall.
        """
        buckets: dict[tuple[str, str, str], dict[str, Any]] = {}
        unions: dict[tuple[str, str, str], set[int]] = {}
        for span in self.walk():
            key = (span.system or "", span.phase, span.name)
            bucket = buckets.setdefault(
                key,
                {
                    "system": span.system,
                    "phase": span.phase,
                    "name": span.name,
                    "count": 0,
                    "messages": 0,
                },
            )
            bucket["count"] += 1
            bucket["messages"] += span.messages
            unions.setdefault(key, set()).update(span.nodes)
        out: list[dict[str, Any]] = []
        for key in sorted(buckets):
            bucket = buckets[key]
            bucket["nodes"] = len(unions[key])
            out.append(bucket)
        return out

    def as_dicts(self, *, include_timings: bool = False) -> list[dict[str, Any]]:
        """Every root span tree in JSON-ready form."""
        return [
            root.as_dict(include_timings=include_timings) for root in self.roots
        ]

    def clear(self) -> None:
        """Drop every recorded span (open-span stack must be empty)."""
        self.roots.clear()
        self._stack.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanRecorder(label={self.label!r}, roots={len(self.roots)})"
