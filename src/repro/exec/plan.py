"""Query plans: the immutable output of the *resolving* stage.

The paper's Pool scheme already separates resolving (Theorem 3.2 /
Algorithm 2 name the relevant cell set at the sink, with zero messages)
from forwarding (splitter-tree dissemination and reply folding).  The
:class:`QueryPlan` makes that separation a first-class artifact shared by
every system under test: planning is pure, produces a hashable record of
*what the execution will touch*, and never charges a message.

A plan carries three identities, each serving a different consumer:

``cache_key``
    ``(system, sink, query)`` — the lookup key of the serving layer's
    plan/result cache.  Two submissions with equal keys are the same
    request and may share a cached result.
``cells``
    The system's *native* cell identities the plan resolves to — Pool
    ``(pool, ho, vo)`` triples, DIM zone codes, DIFS leaf ranges, the
    external warehouse marker, or :data:`ALL_CELLS` for flooding.  These
    are exactly the identities each system's insert listeners report, so
    an insert landing in a plan's cell set invalidates precisely the
    cache entries it could have affected.
``share_key``
    Groups plans whose *executions* are interchangeable: equal share
    keys guarantee the dissemination charges the same messages over the
    same tree, so a batch of concurrent queries with one share key can
    ride a single multicast tree and fold individually.  Systems whose
    message pattern depends on the query payload (flooding scans storage
    to pick responders) include the query in the share key, restricting
    sharing to literal repeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

__all__ = ["QueryPlan", "ALL_CELLS", "WAREHOUSE_CELL"]

#: Sentinel cell identity for systems with no index: every node may hold a
#: match, so every insert invalidates every cached plan (flooding).
ALL_CELLS = "*"

#: Native cell identity of the external-storage warehouse.
WAREHOUSE_CELL = "warehouse"


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """One resolved query: which cells and holders an execution will visit.

    Attributes
    ----------
    system:
        Registry label of the planning system (``"pool"``, ``"dim"``, ...).
    sink:
        Node issuing the query.
    query:
        The query itself (hashable; a :class:`~repro.events.queries.
        RangeQuery` for range systems, the lookup key for GHT).
    cells:
        Native cell identities resolved as relevant, in resolution order.
    destinations:
        Physical nodes the dissemination must reach, in charge order.
    share_key:
        Hashable signature under which executions are interchangeable
        (see module docstring).
    detail:
        Frozen system-specific planning payload (per-Pool legs, zone
        owner maps, leaf index nodes, ...), consumed by that system's
        ``execute_plan``/``fold_replies``.  Excluded from equality and
        hashing: it is derived from the compared fields plus system
        state, and need not itself be hashable (DIM zones aren't).
    """

    system: str
    sink: int
    query: Hashable
    cells: tuple[Hashable, ...]
    destinations: tuple[int, ...]
    share_key: Hashable
    detail: Any = field(default=None, compare=False)

    @property
    def cache_key(self) -> tuple[str, int, Hashable]:
        """Cache lookup identity: the request, not the resolved artifact."""
        return (self.system, self.sink, self.query)

    @property
    def cell_set(self) -> frozenset[Hashable]:
        """The resolved cells as a set — the cache-invalidation index."""
        return frozenset(self.cells)

    @property
    def is_local(self) -> bool:
        """Whether execution needs no radio traffic (all data at the sink)."""
        return not self.destinations or self.destinations == (self.sink,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryPlan({self.system}, sink={self.sink}, "
            f"cells={len(self.cells)}, destinations={len(self.destinations)})"
        )
