"""Staged query execution: plan → execute → fold.

Shared pipeline interface implemented by every system under test.  See
:mod:`repro.exec.plan` and :mod:`repro.exec.stages`.
"""

from repro.exec.plan import ALL_CELLS, WAREHOUSE_CELL, QueryPlan
from repro.exec.stages import (
    Execution,
    InsertListener,
    StagedQuerySystem,
    check_query_dimensions,
    run_staged,
)

__all__ = [
    "ALL_CELLS",
    "WAREHOUSE_CELL",
    "QueryPlan",
    "Execution",
    "InsertListener",
    "StagedQuerySystem",
    "check_query_dimensions",
    "run_staged",
]
