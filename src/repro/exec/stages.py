"""The staged query pipeline: plan → execute → fold.

Every system under test implements the :class:`StagedQuerySystem`
protocol:

* ``plan_query(sink, query)`` — **pure resolving**.  Computes the
  relevant cell set and the dissemination targets; charges zero
  messages; returns a hashable :class:`~repro.exec.plan.QueryPlan`.
* ``execute_plan(plan)`` — **message-charging dissemination and
  collection**.  Walks the plan's forwarding trees, charges the ledger
  and returns an :class:`Execution` naming which holders answered and
  what the transport cost.
* ``fold_replies(plan, execution)`` — **reply aggregation**.  Reads the
  qualifying events from the answered holders' stores and folds them
  into the system's :class:`~repro.dcs.QueryResult`, degrading to a
  partial result when holders were unreachable.

``query(sink, query)`` on every system is a thin wrapper over
:func:`run_staged`, which chains the three stages under the query
lifecycle telemetry span — byte-identical accounting to the historical
monolithic implementations (pinned by ``tests/exec/test_golden.py``).

The split is what the serving layer builds on: plans are cached and
invalidated by cell set, executions are shared across a batch of
concurrent queries with equal share keys, and folds stay per-query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Hashable, Protocol, runtime_checkable

from repro.dcs import QueryResult
from repro.events.event import Event
from repro.events.queries import RangeQuery
from repro.exceptions import DimensionMismatchError
from repro.exec.plan import QueryPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.network import Network

__all__ = [
    "Execution",
    "StagedQuerySystem",
    "InsertListener",
    "run_staged",
    "check_query_dimensions",
]

#: Uniform insert-notification signature: ``(cell, event, holder)`` where
#: ``cell`` is the system's native cell identity (the same identity the
#: system's plans list in :attr:`QueryPlan.cells`).
InsertListener = Callable[[Hashable, Event, int], None]


@dataclass(slots=True)
class Execution:
    """Outcome of the message-charging stage of one plan.

    ``answered`` is the set of destination nodes whose aggregated reply
    reached the sink — every destination on a lossless facade, a subset
    under the reliability layer.  ``detail`` carries system-specific raw
    outcomes (per-Pool leg transcripts, flooding responder scans, ...)
    that the fold stage consumes.
    """

    forward_cost: int = 0
    reply_cost: int = 0
    depth_hops: int = 0
    answered: frozenset[int] = field(default_factory=frozenset)
    detail: Any = None

    @property
    def total_cost(self) -> int:
        """Messages charged by this execution."""
        return self.forward_cost + self.reply_cost


@runtime_checkable
class StagedQuerySystem(Protocol):
    """What the staged pipeline (and the serving layer) requires."""

    #: Event dimensionality ``k`` the system was configured for.
    dimensions: int
    #: Called after every successfully stored event with
    #: ``(native_cell, event, holder_node)`` — the cache-invalidation hook.
    insert_listeners: list[InsertListener]

    @property
    def network(self) -> "Network": ...

    def plan_query(self, sink: int, query: RangeQuery) -> QueryPlan:
        """Pure resolving: zero messages, hashable plan."""
        ...

    def execute_plan(self, plan: QueryPlan) -> Execution:
        """Charge the plan's dissemination + collection; report answers."""
        ...

    def fold_replies(self, plan: QueryPlan, execution: Execution) -> QueryResult:
        """Aggregate the answered holders' events into a result."""
        ...

    def query_span_attrs(self, result: QueryResult) -> dict[str, Any]:
        """System-specific attributes for the query lifecycle span."""
        ...


def check_query_dimensions(dimensions: int, query: RangeQuery) -> None:
    """Reject a query whose dimensionality differs from the system's."""
    if query.dimensions != dimensions:
        raise DimensionMismatchError(dimensions, query.dimensions, "query")


def run_staged(
    system: StagedQuerySystem, sink: int, query: RangeQuery
) -> QueryResult:
    """Chain plan → execute → fold under the query telemetry span.

    This is the body of every system's ``query()`` compatibility wrapper:
    the dimension check happens *before* the span opens (as the
    monolithic implementations did), and the span totals mirror the
    ledger exactly.
    """
    check_query_dimensions(system.dimensions, query)
    tel = system.network.telemetry
    if tel is None:
        plan = system.plan_query(sink, query)
        return system.fold_replies(plan, system.execute_plan(plan))
    with tel.span("query", phase="query", sink=sink) as span:
        plan = system.plan_query(sink, query)
        result = system.fold_replies(plan, system.execute_plan(plan))
        span.add_messages(result.total_cost)
        span.add_nodes(result.visited_nodes)
        span.attrs.update(system.query_span_attrs(result))
        return result
