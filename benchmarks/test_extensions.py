"""Benches for the extension features: k-NN, aggregates, continuous
queries, replication/failure recovery, and the non-DCS baselines."""

from __future__ import annotations

from repro.aggregates import AggregateKind
from repro.bench.harness import run_experiment
from repro.bench.reporting import Table, render_result
from repro.bench.workloads import ExperimentConfig
from repro.core.continuous import ContinuousQueryService
from repro.core.knn import nearest_neighbors
from repro.core.replication import ReplicationPolicy
from repro.core.system import PoolSystem
from repro.events.generators import QueryWorkload, generate_events
from repro.events.queries import RangeQuery
from repro.network.messages import MessageCategory
from repro.network.network import Network
from repro.network.topology import deploy_uniform


def test_knn_cost_pool_vs_dim(benchmark, loaded_pool, loaded_dim):
    """k-NN inherits Pool's pruning: cheaper expanding rounds than DIM."""
    targets = [(0.3, 0.4, 0.5), (0.8, 0.2, 0.6), (0.55, 0.52, 0.1)]

    def run():
        costs = {}
        for name, store in (("pool", loaded_pool), ("dim", loaded_dim)):
            costs[name] = sum(
                nearest_neighbors(store, 0, target, k=5).total_cost
                for target in targets
            )
        return costs

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("k-NN total cost (3 targets, k=5)", ["system", "messages"])
    for name, cost in costs.items():
        table.add(name, cost)
    print()
    print(table.render())
    assert costs["pool"] < costs["dim"]


def test_aggregate_cost_matches_range_query(benchmark, loaded_pool):
    """In-network aggregation rides the same tree as the range query."""
    query = RangeQuery.of((0.2, 0.6), (0.1, 0.7), (0.0, 0.9))

    def run():
        agg = loaded_pool.aggregate(0, query, dimension=1, kind=AggregateKind.AVG)
        rng = loaded_pool.query(0, query)
        return agg, rng

    agg, rng = benchmark.pedantic(run, rounds=1, iterations=1)
    assert agg.total_cost == rng.total_cost
    assert agg.count == rng.match_count


def test_continuous_query_notification_overhead(benchmark, topo900):
    """Per-insert push cost of a standing query vs plain inserts."""

    def run():
        pool = PoolSystem(Network(topo900), 3, seed=7)
        service = ContinuousQueryService(pool)
        sub = service.register(0, RangeQuery.partial(3, {0: (0.9, 1.0)}))
        events = generate_events(900, 3, seed=8, sources=list(topo900))
        for event in events:
            pool.insert(event)
        return sub, service.notify_cost(), len(events)

    sub, notify_cost, inserted = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{inserted} inserts -> {sub.notifications} notifications, "
          f"{notify_cost} NOTIFY messages "
          f"({notify_cost / inserted:.2f}/insert)")
    assert sub.notifications > 0
    # Only matching inserts pay: overhead well below one message/insert
    # for a selective standing query.
    assert notify_cost / inserted < 1.0


def test_replication_and_recovery_costs(benchmark, topo900):
    """What durability costs at insert time and buys at failure time."""

    def run():
        pool = PoolSystem(
            Network(topo900), 3, seed=7,
            replication=ReplicationPolicy(replicas=1),
        )
        events = generate_events(1800, 3, seed=9, sources=list(topo900))
        for event in events:
            pool.insert(event)
        replicate = pool.network.stats.count(MessageCategory.REPLICATE)
        replica_nodes = {
            n for nodes in pool._replica_nodes.values() for n in nodes
        }
        holders = {
            segment.node
            for store in pool._stores.values()
            for segment in store.segments
        }
        victims = sorted(holders - replica_nodes)[:15]
        report = pool.handle_failures(victims)
        return replicate, report

    replicate, report = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nreplication: {replicate} copy messages at insert; "
          f"failure of {len(report.failed_nodes)} holders -> "
          f"{report.events_recovered} recovered, {report.events_lost} lost")
    assert report.fully_recovered


def test_baselines_sweep(benchmark):
    """Pool/DIM vs flooding/external at two sizes (abl-baselines scaled)."""
    config = ExperimentConfig(
        name="abl-baselines-bench",
        title="classical baselines (bench scale)",
        network_sizes=(300,),
        query_workloads=(
            QueryWorkload(dimensions=3, range_sizes="exponential",
                          label="exact/exponential"),
        ),
        query_count=15,
        trials=1,
        systems=("pool", "dim", "flooding", "external"),
    )
    result = benchmark.pedantic(
        lambda: run_experiment(config, seed=0), rounds=1, iterations=1
    )
    print()
    print(render_result(result))
    label = "exact/exponential"
    flood = result.cell("flooding", 300, label).mean_cost
    pool = result.cell("pool", 300, label).mean_cost
    external = result.cell("external", 300, label).mean_cost
    assert flood >= 300          # flooding always pays >= n
    assert pool < flood
    assert external < pool       # reads are free at the warehouse...
    ext_insert = result.cell("external", 300, label).mean_insert_hops
    assert ext_insert > 0        # ...but every write pays transport
