"""Shared fixtures for the benchmark suite.

Macro benchmarks run the figure experiments at reduced scale (the
full-scale reproductions are the ``pool-bench`` CLI's job and are
recorded in EXPERIMENTS.md); micro benchmarks time the hot kernels.
"""

from __future__ import annotations

import pytest

from repro.core.system import PoolSystem
from repro.dim.index import DimIndex
from repro.events.generators import generate_events
from repro.network.network import Network
from repro.network.topology import deploy_uniform


@pytest.fixture(scope="session")
def topo900():
    """The paper's fixed-size network (Figure 7 setting)."""
    return deploy_uniform(900, seed=42)


@pytest.fixture(scope="session")
def loaded_pool(topo900):
    """A Pool system pre-loaded with 3 events per node."""
    system = PoolSystem(Network(topo900), 3, seed=42)
    for event in generate_events(2700, 3, seed=43, sources=list(topo900)):
        system.insert(event)
    return system


@pytest.fixture(scope="session")
def loaded_dim(topo900):
    """A DIM baseline pre-loaded with the same workload."""
    system = DimIndex(Network(topo900), 3)
    for event in generate_events(2700, 3, seed=43, sources=list(topo900)):
        system.insert(event)
    return system
