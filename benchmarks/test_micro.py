"""Microbenchmarks of the hot kernels.

These time the pure-computation pieces a deployment would run constantly:
Theorem 3.1 placement, Theorem 3.2/Algorithm 2 resolving, DIM's zone
descent and decomposition, GPSR path computation and multicast grafting.
"""

from __future__ import annotations

import itertools

from repro.core.insertion import placement_for
from repro.core.resolve import relevant_offsets
from repro.events.generators import exact_match_queries, generate_events
from repro.events.queries import RangeQuery
from repro.routing.gpsr import GPSRRouter
from repro.routing.multicast import TreeBuilder

EVENTS = generate_events(1000, 3, seed=1)
QUERIES = exact_match_queries(200, 3, seed=2)
PARTIAL = RangeQuery.partial(3, {2: (0.8, 0.84)})


def test_placement_throughput(benchmark):
    """Theorem 3.1: pure arithmetic, no search — must be microseconds."""
    cycle = itertools.cycle(EVENTS)
    benchmark(lambda: placement_for(next(cycle), 10))


def test_resolve_throughput(benchmark):
    """Algorithm 2 over all three Pools for one query."""
    cycle = itertools.cycle(QUERIES)

    def resolve_all_pools():
        query = next(cycle)
        return [relevant_offsets(query, pool, 10) for pool in range(3)]

    benchmark(resolve_all_pools)


def test_resolve_partial_match(benchmark):
    benchmark(lambda: [relevant_offsets(PARTIAL, pool, 10) for pool in range(3)])


def test_dim_zone_descent(benchmark, loaded_dim):
    cycle = itertools.cycle(EVENTS)
    tree = loaded_dim.tree
    benchmark(lambda: tree.leaf_for_values(next(cycle).values))


def test_dim_query_decomposition(benchmark, loaded_dim):
    cycle = itertools.cycle(QUERIES)
    tree = loaded_dim.tree
    benchmark(lambda: tree.zones_for_query(next(cycle)))


def test_gpsr_route_uncached(benchmark, topo900):
    router = GPSRRouter(topo900)
    pairs = itertools.cycle([(0, 899), (13, 700), (400, 2), (555, 111)])
    benchmark(lambda: router.route(*next(pairs)))


def test_multicast_tree_build(benchmark, topo900):
    router = GPSRRouter(topo900)
    destinations = list(range(0, 900, 45))

    def build():
        builder = TreeBuilder(router, 450)
        builder.add_destinations(destinations)
        return builder.build()

    benchmark(build)


def test_pool_query_end_to_end(benchmark, loaded_pool):
    cycle = itertools.cycle(QUERIES)
    benchmark(lambda: loaded_pool.query(0, next(cycle)))


def test_dim_query_end_to_end(benchmark, loaded_dim):
    cycle = itertools.cycle(QUERIES)
    benchmark(lambda: loaded_dim.query(0, next(cycle)))


def test_pool_insert_end_to_end(benchmark, loaded_pool):
    cycle = itertools.cycle(EVENTS)
    sources = itertools.cycle(range(0, 900, 7))
    benchmark(lambda: loaded_pool.insert(next(cycle), source=next(sources)))


def test_event_generation(benchmark):
    benchmark(lambda: generate_events(1000, 3, seed=3))
