"""Figure 7 regeneration benches: partial-match query costs at n=900.

Full scale: ``pool-bench fig7a`` / ``pool-bench fig7b``.  Claims:

* 7(a): DIM costs a multiple of Pool on 1-partial queries and the gap
  widens on 2-partial queries.
* 7(b): DIM is worst when dimension 1 is unspecified, improving toward
  1@3; Pool is flat and cheaper everywhere.
"""

from __future__ import annotations

from repro.bench.harness import run_experiment
from repro.bench.reporting import render_result
from repro.bench.workloads import ExperimentConfig
from repro.events.generators import QueryWorkload

SIZE = 900


def _partial(unspecified, label) -> QueryWorkload:
    return QueryWorkload(
        dimensions=3, kind="partial", unspecified=unspecified, label=label
    )


FIG7A = ExperimentConfig(
    name="fig7a-bench",
    title="Figure 7(a) (bench scale)",
    network_sizes=(SIZE,),
    query_workloads=(_partial(1, "1-partial"), _partial(2, "2-partial")),
    query_count=25,
    trials=1,
)

FIG7B = ExperimentConfig(
    name="fig7b-bench",
    title="Figure 7(b) (bench scale)",
    network_sizes=(SIZE,),
    query_workloads=(
        _partial((0,), "1@1-partial"),
        _partial((1,), "1@2-partial"),
        _partial((2,), "1@3-partial"),
    ),
    query_count=25,
    trials=1,
)


def test_fig7a_partial_match_degree(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(FIG7A, seed=0), rounds=1, iterations=1
    )
    print()
    print(render_result(result))
    ratio_1 = (
        result.cell("dim", SIZE, "1-partial").mean_cost
        / result.cell("pool", SIZE, "1-partial").mean_cost
    )
    ratio_2 = (
        result.cell("dim", SIZE, "2-partial").mean_cost
        / result.cell("pool", SIZE, "2-partial").mean_cost
    )
    assert ratio_1 > 1.5, "DIM must cost a multiple of Pool on 1-partial"
    assert ratio_2 > ratio_1, "the gap must widen for vaguer queries"


def test_fig7b_unspecified_dimension_order(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(FIG7B, seed=0), rounds=1, iterations=1
    )
    print()
    print(render_result(result))
    dim_costs = [
        result.cell("dim", SIZE, f"1@{n}-partial").mean_cost for n in (1, 2, 3)
    ]
    pool_costs = [
        result.cell("pool", SIZE, f"1@{n}-partial").mean_cost for n in (1, 2, 3)
    ]
    assert dim_costs[0] > dim_costs[2], "DIM worst at 1@1, best at 1@3"
    spread = (max(pool_costs) - min(pool_costs)) / max(pool_costs)
    assert spread < 0.35, f"Pool must stay flat across 1@n (spread={spread:.2f})"
    for pool_cost, dim_cost in zip(pool_costs, dim_costs):
        assert pool_cost < dim_cost, "Pool must win at every 1@n"
