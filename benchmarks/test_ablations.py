"""Ablation benches (DESIGN.md §3): design-choice studies beyond the paper."""

from __future__ import annotations

from repro.bench.ablations import run_hotspot_ablation, run_routing_ablation
from repro.bench.harness import run_experiment
from repro.bench.reporting import render_result
from repro.bench.workloads import ExperimentConfig
from repro.events.generators import QueryWorkload


def test_abl_insert_cost_parity(benchmark):
    """Paper §5.2: insertion is 'conceptually the same' for both systems."""
    config = ExperimentConfig(
        name="abl-insert-bench",
        title="insertion cost parity (bench scale)",
        network_sizes=(300, 900),
        query_workloads=(
            QueryWorkload(dimensions=3, range_sizes="exponential"),
        ),
        query_count=5,
        trials=1,
    )
    result = benchmark.pedantic(
        lambda: run_experiment(config, seed=0), rounds=1, iterations=1
    )
    print()
    print(render_result(result))
    workload = result.rows[0].workload
    for size in (300, 900):
        pool_hops = result.cell("pool", size, workload).mean_insert_hops
        dim_hops = result.cell("dim", size, workload).mean_insert_hops
        assert 0.4 < pool_hops / dim_hops < 2.5, (
            f"insert hop ratio out of band at n={size}"
        )


def test_abl_splitter_routing(benchmark):
    """Routing via the splitter vs a direct tree from the sink."""
    config = ExperimentConfig(
        name="abl-splitter-bench",
        title="splitter vs direct forwarding (bench scale)",
        network_sizes=(600,),
        query_workloads=(
            QueryWorkload(dimensions=3, range_sizes="uniform", label="exact"),
        ),
        query_count=15,
        trials=1,
        systems=("pool", "pool-direct"),
    )
    result = benchmark.pedantic(
        lambda: run_experiment(config, seed=0), rounds=1, iterations=1
    )
    print()
    print(render_result(result))
    via = result.cell("pool", 600, "exact").mean_cost
    direct = result.cell("pool-direct", 600, "exact").mean_cost
    # The splitter detour must stay a small constant factor.
    assert via < 1.5 * direct


def test_abl_side_length(benchmark):
    """Pool side length l: query cost across l in {5, 10, 20}."""
    config = ExperimentConfig(
        name="abl-l-bench",
        title="side length sweep (bench scale)",
        network_sizes=(600,),
        query_workloads=(
            QueryWorkload(dimensions=3, range_sizes="uniform", label="exact"),
        ),
        query_count=15,
        trials=1,
        systems=("pool-l5", "pool-l10", "pool-l20"),
    )
    result = benchmark.pedantic(
        lambda: run_experiment(config, seed=0), rounds=1, iterations=1
    )
    print()
    print(render_result(result))
    costs = {
        system: result.cell(system, 600, "exact").mean_cost
        for system in config.systems
    }
    # Finer grids visit more cells per query: cost must not shrink with l.
    assert costs["pool-l20"] > costs["pool-l5"]


def test_abl_hotspot(benchmark):
    table = benchmark.pedantic(
        lambda: run_hotspot_ablation(size=600, capacity=24, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    loads = {row[0]: int(row[1]) for row in table.rows}
    assert loads["pool (sharing)"] < loads["pool (no sharing)"]


def test_abl_routing(benchmark):
    table = benchmark.pedantic(
        lambda: run_routing_ablation(size=400, samples=100, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    densest = table.rows[-1]
    done, total = densest[2].split("/")
    assert done == total, "GPSR must deliver everything at paper density"
