"""Figure 6 regeneration benches: exact-match query cost vs network size.

Each bench runs a reduced-scale slice of the paper's sweep (full scale:
``pool-bench fig6a`` / ``pool-bench fig6b``), prints the series the figure
plots, and asserts the paper's qualitative claims:

* 6(a): DIM's cost grows with network size; Pool stays nearly flat and
  cheaper at every size.
* 6(b): with exponential range sizes both cost far less; ordering holds.
"""

from __future__ import annotations

from repro.bench.harness import run_experiment
from repro.bench.reporting import render_result
from repro.bench.workloads import ExperimentConfig
from repro.events.generators import QueryWorkload

SIZES = (150, 450, 900)


def _config(name: str, range_sizes: str) -> ExperimentConfig:
    return ExperimentConfig(
        name=name,
        title=f"{name} (bench scale)",
        network_sizes=SIZES,
        query_workloads=(
            QueryWorkload(dimensions=3, range_sizes=range_sizes,  # type: ignore[arg-type]
                          label=f"exact/{range_sizes}"),
        ),
        query_count=15,
        trials=1,
    )


def _assert_fig6_shape(result) -> None:
    pool = [cost for _, cost in result.series("pool")]
    dim = [cost for _, cost in result.series("dim")]
    for size, (p, d) in zip(SIZES, zip(pool, dim)):
        assert p < d, f"Pool must beat DIM at n={size}"
    assert dim[-1] > 1.3 * dim[0], "DIM cost must grow with network size"
    assert pool[-1] / pool[0] < dim[-1] / dim[0], "Pool must scale better"


def test_fig6a_uniform_range_sizes(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(_config("fig6a", "uniform"), seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_result(result))
    _assert_fig6_shape(result)


def test_fig6b_exponential_range_sizes(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(_config("fig6b", "exponential"), seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_result(result))
    _assert_fig6_shape(result)


def test_fig6_exponential_cheaper_than_uniform(benchmark):
    """The cross-panel claim: 6(b) sits far below 6(a) for both systems."""

    def run_both():
        uniform = run_experiment(_config("fig6a", "uniform"), seed=0)
        exponential = run_experiment(_config("fig6b", "exponential"), seed=0)
        return uniform, exponential

    uniform, exponential = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for system in ("pool", "dim"):
        for (size, u_cost), (_, e_cost) in zip(
            uniform.series(system), exponential.series(system)
        ):
            assert e_cost < u_cost, f"{system} at n={size}"
