#!/usr/bin/env python3
"""Node failures: role re-election, replication, and what gets lost.

Sensor nodes die — batteries drain, hardware fails.  The paper assumes
reliable index nodes; this example shows the hardening the library adds:

1. GPSR routes around failed nodes (perimeter mode handles the holes).
2. Index-node roles re-elect deterministically ("closest alive node to
   the cell center"), so survivors agree without coordination.
3. With synchronous replication enabled, a dead index node's events are
   restored from its cell's replica; without it, they are lost — and the
   report says exactly how much.

Run:  python examples/failure_recovery.py
"""

from __future__ import annotations

from repro import (
    Network,
    PoolSystem,
    RangeQuery,
    ReplicationPolicy,
    deploy_uniform,
    generate_events,
)
from repro.network.messages import MessageCategory


def build(topology, replicas: int):
    pool = PoolSystem(
        Network(topology),
        dimensions=3,
        seed=3,
        replication=ReplicationPolicy(replicas=replicas),
    )
    events = generate_events(1500, 3, seed=4, sources=list(topology))
    for event in events:
        pool.insert(event)
    return pool, events


def main() -> None:
    topology = deploy_uniform(500, seed=3)
    sink = topology.closest_node(topology.field.center)
    query = RangeQuery.partial(3, {0: (0.5, 0.9)})

    for replicas in (0, 1):
        pool, events = build(topology, replicas)
        truth = sum(1 for e in events if query.matches(e))
        replicate_msgs = pool.network.stats.count(MessageCategory.REPLICATE)
        label = f"replicas={replicas}"
        print(f"--- {label} "
              f"(replication cost: {replicate_msgs} messages at insert time)")

        # Fail 10 index nodes that currently hold data (their replicas,
        # if any, survive — the independent-failure regime).
        replica_nodes = {
            n for nodes in pool._replica_nodes.values() for n in nodes
        }
        holders = {
            segment.node
            for store in pool._stores.values()
            for segment in store.segments
        }
        victims = sorted(holders - replica_nodes)[:10]
        report = pool.handle_failures(victims)
        print(f"  failed {len(victims)} index nodes -> "
              f"{report.segments_reassigned} segments re-homed, "
              f"{report.events_recovered} events recovered, "
              f"{report.events_lost} lost "
              f"({report.recovery_messages} recovery messages)")

        result = pool.query(sink, query)
        print(f"  query afterwards: {result.match_count}/{truth} of the "
              f"original matches"
              + ("  (exact ✓)" if result.match_count == truth else
                 "  (survivors only — no replicas to restore from)"))
        print()

    print("takeaway: replication converts permanent data loss into a "
          "bounded, measured recovery cost; role re-election alone keeps "
          "the index answering either way.")


if __name__ == "__main__":
    main()
