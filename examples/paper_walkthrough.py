#!/usr/bin/env python3
"""Walk through the paper's worked examples (Figures 1-5) numerically.

Every table printed here is asserted against the paper's figures in the
test suite; this script exists so a reader can see the machinery produce
the published numbers.

Run:  python examples/paper_walkthrough.py
"""

from repro import DimIndex, Network, RangeQuery, deploy_uniform
from repro.core import Cell, PoolLayout, relevant_cells
from repro.core.insertion import placement_for
from repro.core.ranges import cell_value_ranges
from repro.core.resolve import query_ranges_for_pool
from repro.events import Event


def figure_1_dim_zones() -> None:
    """Figure 1: a small DIM network and its zone partition."""
    print("=" * 72)
    print("Figure 1 — DIM zone partition (8-node network)")
    print("=" * 72)
    topology = deploy_uniform(8, seed=4, target_degree=5)
    network = Network(topology)
    dim = DimIndex(network, dimensions=3)
    print(f"{'zone code':<12} {'value ranges (d1, d2, d3)'}")
    for leaf in sorted(dim.tree.leaves, key=lambda z: z.code):
        ranges = ", ".join(f"[{lo:.3g},{hi:.3g}]" for lo, hi in leaf.value_box)
        print(f"{leaf.code:<12} {{{ranges}}}  owner=node {leaf.owner}")
    print("(straight binary descent; the paper's Figure 1(b) applies DIM's")
    print(" reflection convention — an isomorphic partition, see DESIGN.md)")


def figure_3_cell_ranges() -> None:
    """Figure 3: horizontal/vertical ranges of every cell of P1 (l=5)."""
    print("\n" + "=" * 72)
    print("Figure 3 — Equation 1 value ranges of P1's cells (l = 5)")
    print("=" * 72)
    side = 5
    for vo in reversed(range(side)):
        row = []
        for ho in range(side):
            (_, _), (v_lo, v_hi) = cell_value_ranges(ho, vo, side)
            row.append(f"[{v_lo:.2f},{v_hi:.2f})")
        print("  ".join(f"{cell:<13}" for cell in row))
    header = []
    for ho in range(side):
        (h_lo, h_hi), _ = cell_value_ranges(ho, 0, side)
        header.append(f"[{h_lo:.1f},{h_hi:.1f})")
    print("  ".join(f"{cell:<13}" for cell in header))
    print("(columns: horizontal ranges; rows shown top-down like the figure)")


def insertion_example() -> None:
    """Section 3.1.2's example: E = <0.4, 0.3, 0.1> lands in C(3,4)."""
    print("\n" + "=" * 72)
    print("Insertion example — E = <0.4, 0.3, 0.1>, P1 pivot C(1,2), l = 5")
    print("=" * 72)
    event = Event.of(0.4, 0.3, 0.1)
    placement = placement_for(event, side_length=5)
    pool1 = PoolLayout(0, Cell(1, 2), 5)
    cell = pool1.cell_at(placement.ho, placement.vo)
    print(f"greatest value {event.greatest_value} in dimension d1={event.d1 + 1}"
          f" -> store in P{placement.pool + 1}")
    print(f"offsets (HO, VO) = ({placement.ho}, {placement.vo})"
          f" -> global cell {cell!r} (paper: C(3,4))")


def figures_4_and_5() -> None:
    """Figures 4 & 5: relevant cells for the two example queries."""
    pools = [
        PoolLayout(0, Cell(1, 2), 5),
        PoolLayout(1, Cell(2, 10), 5),
        PoolLayout(2, Cell(7, 3), 5),
    ]
    for figure, query in (
        ("Figure 4", RangeQuery.of((0.2, 0.3), (0.25, 0.35), (0.21, 0.24))),
        ("Figure 5", RangeQuery.partial(3, {2: (0.8, 0.84)})),
    ):
        print("\n" + "=" * 72)
        print(f"{figure} — relevant cells for {query}")
        print("=" * 72)
        for pool in pools:
            derived = query_ranges_for_pool(query, pool.index)
            cells = relevant_cells(query, pool)
            h = derived.horizontal
            v = derived.vertical
            print(f"P{pool.index + 1}: R_H=[{h[0]:.2f},{h[1]:.2f}] "
                  f"R_V=[{v[0]:.2f},{v[1]:.2f}] -> "
                  f"{[repr(c) for c in cells] if cells else 'no relevant cells'}")


def main() -> None:
    figure_1_dim_zones()
    figure_3_cell_ranges()
    insertion_example()
    figures_4_and_5()


if __name__ == "__main__":
    main()
