#!/usr/bin/env python3
"""Shard one deployment across workers — same answers, less wall-clock.

A single simulated field can outgrow a single Python process long before
it outgrows the machine.  The shard engine spatially partitions ONE
deployment into K tiles: each worker owns the nodes inside its tile
(plus a radio-range halo) and advances only the packets currently inside
it; a packet that greedily forwards across a tile edge becomes a
boundary message, delivered in the next deterministic exchange round.

The contract demonstrated here:

1. The shard plan tiles the field; every node has exactly one owner.
2. Routes, hop-for-hop, are identical to the monolithic router — even
   for pairs that cross tile boundaries (the halo guarantees each owner
   sees every neighbor of its nodes, so greedy/perimeter decisions are
   made with full local knowledge).  The engine exposes its BSP
   accounting: exchange rounds and boundary messages.
3. On a full harness cell at scale, the sharded engine beats the
   monolithic loop while producing the *same result rows* — run
   ``python -m repro.bench.perf --scale-demo`` for the 10^4-node
   version recorded in results/BENCH_scale.json.

Run:  python examples/sharded_scaleout.py
"""

from __future__ import annotations

from time import perf_counter

from repro.bench.harness import run_experiment
from repro.bench.workloads import ExperimentConfig
from repro.events.generators import QueryWorkload
from repro.exceptions import DeliveryError
from repro.network.deployment import Deployment
from repro.rng import derive

SHARDS = 4
ROUTE_NODES = 900
ROUTES = 400
CELL_NODES = 5000


def pinned_pairs(size: int, count: int) -> list[tuple[int, int]]:
    rng = derive(0, "example", "sharded-scaleout", size)
    pairs: list[tuple[int, int]] = []
    while len(pairs) < count:
        src = int(rng.integers(0, size))
        dst = int(rng.integers(0, size))
        if src != dst:
            pairs.append((src, dst))
    return pairs


def route_outcome(router, src: int, dst: int):
    try:
        result = router.route(src, dst)
    except DeliveryError as error:
        return ("error", str(error))
    return (result.delivered, tuple(result.path), result.perimeter_hops)


def show_equivalence() -> None:
    mono = Deployment.deploy(ROUTE_NODES, seed=7)
    pairs = pinned_pairs(ROUTE_NODES, ROUTES)

    with mono.shard(SHARDS, workers="inline") as sharded:
        plan = sharded.plan
        print(f"field {mono.topology.field.width:.0f}x"
              f"{mono.topology.field.height:.0f} split into "
              f"{plan.tiles_x}x{plan.tiles_y} tiles "
              f"(halo {plan.halo:.0f} = radio range)")
        owner = plan.owner_of_nodes(mono.topology.positions)
        for shard in range(plan.shards):
            print(f"  shard {shard}: owns {int((owner == shard).sum())} "
                  f"of {ROUTE_NODES} nodes")

        reference = [route_outcome(mono.router, s, d) for s, d in pairs]
        ours = [route_outcome(sharded.router, s, d) for s, d in pairs]
        crossing = sum(1 for s, d in pairs if owner[s] != owner[d])
        identical = sum(1 for a, b in zip(reference, ours) if a == b)
        print(f"\n{ROUTES} routes ({crossing} cross a tile boundary): "
              f"{identical}/{ROUTES} identical to the monolithic router")
        assert identical == ROUTES, "sharded routing diverged!"

        engine = sharded.engine
        print(f"engine: {engine.packets_routed} packets, "
              f"{engine.exchange_rounds} exchange rounds, "
              f"{engine.boundary_messages} boundary messages")


def cell_config(shards: int) -> ExperimentConfig:
    return ExperimentConfig(
        name="example-scaleout",
        title="sharded scale-out demo",
        network_sizes=(CELL_NODES,),
        events_per_node=1,
        query_count=30,
        trials=1,
        systems=("pool",),
        query_workloads=(
            QueryWorkload(
                dimensions=3,
                kind="exact",
                range_sizes="uniform",
                label="exact/uniform",
            ),
        ),
        shards=shards,
        shard_workers="inline",
    )


def show_scaleout() -> None:
    print(f"\nfull harness cell, {CELL_NODES} nodes, pool system:")
    start = perf_counter()
    mono = run_experiment(cell_config(1), seed=0)
    mono_seconds = perf_counter() - start

    start = perf_counter()
    sharded = run_experiment(cell_config(SHARDS), seed=0)
    shard_seconds = perf_counter() - start

    mono_rows = [row.as_dict(include_timings=False) for row in mono.rows]
    shard_rows = [row.as_dict(include_timings=False) for row in sharded.rows]
    assert shard_rows == mono_rows, "sharded harness rows diverged!"
    print(f"  result rows: identical ({len(mono_rows)} rows)")
    print(f"  wall-clock: monolithic {mono_seconds:.2f}s, "
          f"{SHARDS} shards {shard_seconds:.2f}s "
          f"({mono_seconds / shard_seconds:.1f}x)")


def main() -> None:
    show_equivalence()
    show_scaleout()


if __name__ == "__main__":
    main()
