#!/usr/bin/env python3
"""Quickstart: deploy a sensor network, store events, run range queries.

Run:  python examples/quickstart.py
"""

from repro import (
    Network,
    PoolSystem,
    RangeQuery,
    deploy_uniform,
    generate_events,
)


def main() -> None:
    # 1. Deploy 900 sensors uniformly (radio range 40 m, ~20 neighbors),
    #    exactly the paper's Section 5.1 setting.
    topology = deploy_uniform(900, seed=7)
    network = Network(topology)
    print(f"deployed {topology.size} nodes, average degree "
          f"{topology.average_degree:.1f}, field "
          f"{topology.field.width:.0f}x{topology.field.height:.0f} m")

    # 2. Build the Pool store for 3-dimensional events
    #    (e.g. temperature, humidity, light — all normalized to [0, 1]).
    pool = PoolSystem(network, dimensions=3, seed=7)
    print(f"pools: {[repr(p) for p in pool.pools]}")

    # 3. Every sensor detects three events; each event routes to the index
    #    node its greatest/second-greatest values select (Theorem 3.1).
    events = generate_events(2700, 3, seed=7, sources=list(topology))
    insert_hops = [pool.insert(event).hops for event in events]
    print(f"inserted {len(events)} events, "
          f"avg {sum(insert_hops) / len(insert_hops):.1f} hops each")

    # 4. An exact-match range query: all events with every attribute in a
    #    narrow band.
    sink = topology.closest_node(topology.field.center)
    query = RangeQuery.of((0.2, 0.4), (0.25, 0.45), (0.1, 0.5))
    result = pool.query(sink, query)
    print(f"\nexact-match {query}")
    print(f"  -> {result.match_count} matching events, "
          f"{result.total_cost} messages "
          f"({result.forward_cost} forward + {result.reply_cost} reply)")

    # 5. A partial-match query: 'humidity between 0.8 and 0.9, anything
    #    else' — the expensive query class Pool is designed for.
    partial = RangeQuery.partial(3, {1: (0.8, 0.9)})
    result = pool.query(sink, partial)
    print(f"\npartial-match {partial}")
    print(f"  -> {result.match_count} matching events, "
          f"{result.total_cost} messages")

    # 6. Sanity: the distributed answer equals a centralized scan.
    truth = sum(1 for event in events if partial.matches(event))
    assert result.match_count == truth, "distributed result must be exact"
    print(f"\nverified against a centralized scan ({truth} matches) ✓")

    # 7. Where did the query actually go?  Render the field: lowercase
    #    letters are Pool footprints, uppercase are the relevant cells.
    from repro.viz import render_pools

    print()
    print(render_pools(pool, partial, width=64))


if __name__ == "__main__":
    main()
