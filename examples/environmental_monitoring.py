#!/usr/bin/env python3
"""Environmental monitoring: the paper's motivating scenario, end to end.

A field of sensors measures temperature, humidity and light (the
multi-attribute hardware the paper's introduction cites).  An operator at
the base station asks all four query types of Section 2 and we compare
what each one costs on Pool versus the DIM baseline — and, for the only
query GHT can express (exact-match point lookup by event type), versus
GHT as well.

Run:  python examples/environmental_monitoring.py
"""

from __future__ import annotations

from repro import (
    DimIndex,
    GeographicHashTable,
    Network,
    PoolSystem,
    RangeQuery,
    deploy_uniform,
    generate_events,
)

ATTRIBUTES = ("temperature", "humidity", "light")


def describe(query: RangeQuery) -> str:
    parts = []
    for name, (lo, hi) in zip(ATTRIBUTES, query.bounds):
        if (lo, hi) == (0.0, 1.0):
            continue
        if lo == hi:
            parts.append(f"{name}={lo:.2f}")
        else:
            parts.append(f"{name} in [{lo:.2f},{hi:.2f}]")
    return " and ".join(parts) if parts else "anything"


def main() -> None:
    topology = deploy_uniform(900, seed=21)
    sink = topology.closest_node(topology.field.center)
    print(f"{topology.size} sensors deployed; base station at node {sink}\n")

    # One independent accounting domain per system under comparison.
    pool = PoolSystem(Network(topology), dimensions=3, seed=21)
    dim = DimIndex(Network(topology), dimensions=3)
    ght_net = Network(topology)
    ght = GeographicHashTable(ght_net)

    # Readings: normalized (temperature, humidity, light) triples.
    events = generate_events(2700, 3, seed=22, sources=list(topology))
    for event in events:
        pool.insert(event)
        dim.insert(event)
        # GHT can only store by *event type*; bucket readings by the
        # attribute with the greatest value, the closest analogue.
        ght.put(event.source or sink, ATTRIBUTES[event.d1], event)

    queries = [
        ("Type 3: exact-match range (heat-stress scan)",
         RangeQuery.of((0.7, 0.9), (0.0, 0.4), (0.5, 1.0))),
        ("Type 4: partial-match range (humid spots, rest don't-care)",
         RangeQuery.partial(3, {1: (0.8, 0.95)})),
        ("Type 4: vaguer 2-partial (bright spots)",
         RangeQuery.partial(3, {2: (0.9, 1.0)})),
        ("Type 1: exact-match point (calibration echo)",
         RangeQuery.point(*events[0].values)),
        ("Type 2: partial-match point",
         RangeQuery.partial(3, {0: (events[1].values[0],) * 2})),
    ]

    print(f"{'query':<55} {'pool':>10} {'dim':>10} {'matches':>8}")
    print("-" * 88)
    for label, query in queries:
        pool_result = pool.query(sink, query)
        dim_result = dim.query(sink, query)
        assert pool_result.match_count == dim_result.match_count
        print(f"{label:<55} {pool_result.total_cost:>10} "
              f"{dim_result.total_cost:>10} {pool_result.match_count:>8}")
        print(f"    ({describe(query)})")

    # GHT comparison on the one thing it can do: fetch all events of one
    # "type".  Cheap per lookup — but it cannot narrow by value at all,
    # so it hauls back every temperature-dominated event.
    receipt = ght.get(sink, "temperature")
    print(f"\nGHT exact-type lookup 'temperature': {receipt.hops} messages, "
          f"{len(receipt.values)} events returned (no range filtering "
          "possible — the Section 1 limitation that motivates Pool)")


if __name__ == "__main__":
    main()
