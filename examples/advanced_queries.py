#!/usr/bin/env python3
"""Advanced queries: aggregates, continuous monitoring, k-NN search.

These are the capabilities the paper's conclusion promises as Pool
extensions, built on the published machinery:

* in-network aggregates folded at splitters (Section 3.2.3),
* standing queries with push notifications ("continuous monitoring"),
* exact k-nearest-neighbor search by expanding range boxes.

Run:  python examples/advanced_queries.py
"""

from __future__ import annotations

from repro import (
    AggregateKind,
    ContinuousQueryService,
    Network,
    PoolSystem,
    RangeQuery,
    deploy_uniform,
    generate_events,
    nearest_neighbors,
)


def main() -> None:
    topology = deploy_uniform(600, seed=13)
    sink = topology.closest_node(topology.field.center)
    pool = PoolSystem(Network(topology), dimensions=3, seed=13)

    events = generate_events(1800, 3, seed=14, sources=list(topology))
    for event in events:
        pool.insert(event)

    # ------------------------------------------------------------- #
    # 1. Aggregates: "average humidity where temperature is high".  #
    # ------------------------------------------------------------- #
    hot = RangeQuery.partial(3, {0: (0.7, 1.0)})
    avg = pool.aggregate(sink, hot, dimension=1, kind=AggregateKind.AVG)
    count = pool.aggregate(sink, hot, dimension=1, kind=AggregateKind.COUNT)
    print("aggregate queries over <temperature in [0.7, 1.0], *, *>:")
    print(f"  COUNT = {count.value:.0f} events, AVG(humidity) = {avg.value:.4f}")
    print(f"  cost: {avg.total_cost} messages (same tree as the range "
          "query; replies shrink to O(1) partials)")
    matching = [e for e in events if hot.matches(e)]
    truth = sum(e.values[1] for e in matching) / len(matching)
    assert abs(avg.value - truth) < 1e-9
    print(f"  verified against a centralized scan ({truth:.4f}) ✓")

    # ------------------------------------------------------------- #
    # 2. Continuous monitoring: alert on extreme readings.          #
    # ------------------------------------------------------------- #
    service = ContinuousQueryService(pool)
    alert = RangeQuery.partial(3, {0: (0.95, 1.0)})
    sub = service.register(sink, alert)
    print(f"\nstanding query {alert} registered "
          f"for {sub.registration_cost} messages")
    new_readings = generate_events(300, 3, seed=15, sources=list(topology))
    for event in new_readings:
        pool.insert(event)
    expected = sum(1 for e in new_readings if alert.matches(e))
    print(f"  {len(new_readings)} new readings -> {sub.notifications} "
          f"push notifications ({service.notify_cost()} NOTIFY messages)")
    assert sub.notifications == expected
    service.unregister(sub)

    # ------------------------------------------------------------- #
    # 3. k-NN: the five readings most similar to a reference.       #
    # ------------------------------------------------------------- #
    target = (0.6, 0.55, 0.2)
    knn = nearest_neighbors(pool, sink, target, k=5)
    print(f"\n5 nearest neighbors of {target} "
          f"({knn.rounds} expanding rounds, {knn.total_cost} messages):")
    for event, distance in zip(knn.neighbors, knn.distances):
        values = ", ".join(f"{v:.3f}" for v in event.values)
        print(f"  <{values}>  dist={distance:.4f}")


if __name__ == "__main__":
    main()
