#!/usr/bin/env python3
"""Hotspot relief: workload sharing under a skewed event distribution.

A wildfire-style scenario: readings suddenly concentrate in a narrow
value band (hot, dry, bright), which hammers the few index nodes owning
that band.  This script shows the Section 4.2 workload-sharing mechanism
flattening the per-node load, and what queries cost before/after.

Run:  python examples/hotspot_sharing.py
"""

from __future__ import annotations

from repro import (
    Network,
    PoolSystem,
    RangeQuery,
    SharingPolicy,
    deploy_uniform,
    generate_events,
)
from repro.network.messages import MessageCategory


def load_report(label: str, system: PoolSystem) -> None:
    distribution = system.storage_distribution()
    loads = sorted(distribution.values(), reverse=True)
    total = sum(loads)
    top = loads[0] if loads else 0
    print(f"{label:<24} nodes storing: {len(loads):>4}   "
          f"hottest node: {top:>5} events ({100 * top / total:.0f}% of all)")


def main() -> None:
    topology = deploy_uniform(900, seed=33)
    sink = topology.closest_node(topology.field.center)

    # Skewed workload: gaussian readings clustered around 0.7.
    events = generate_events(
        2700, 3, distribution="gaussian", seed=34, sources=list(topology)
    )

    # Same topology, same events — sharing off vs on.
    baseline = PoolSystem(Network(topology), 3, seed=33)
    shared = PoolSystem(
        Network(topology),
        3,
        seed=33,
        sharing=SharingPolicy(enabled=True, capacity=32),
    )
    for event in events:
        baseline.insert(event)
        shared.insert(event)

    print("per-node storage load under a skewed (gaussian) workload:\n")
    load_report("sharing disabled:", baseline)
    load_report("sharing enabled:", shared)
    sharing_msgs = shared.network.stats.count(MessageCategory.SHARING)
    print(f"\nsharing overhead: {sharing_msgs} handoff messages "
          f"({sharing_msgs / len(events):.2f} per inserted event)")

    # Queries over the hot band still return identical, exact answers.
    hot_query = RangeQuery.of((0.6, 0.8), (0.6, 0.8), (0.6, 0.8))
    r_base = baseline.query(sink, hot_query)
    r_shared = shared.query(sink, hot_query)
    assert r_base.match_count == r_shared.match_count
    print(f"\nhot-band query {hot_query}:")
    print(f"  sharing disabled: {r_base.total_cost} messages, "
          f"{r_base.match_count} matches")
    print(f"  sharing enabled:  {r_shared.total_cost} messages, "
          f"{r_shared.match_count} matches")
    print("\n(the shared system touches a few extra delegate nodes per "
          "query in exchange for bounding every node's storage/energy burn)")

    # Energy rotation: the hottest cell hands off to a fresh node.
    hottest = max(
        shared._stores.items(), key=lambda kv: kv[1].total_events()
    )
    (pool_i, ho, vo), store = hottest
    old = store.primary_node
    new = shared.handoff_cell(pool_i, ho, vo)
    print(f"\nenergy rotation: cell P{pool_i + 1}(HO={ho},VO={vo}) handed "
          f"off node {old} -> node {new}; node {old} may now sleep")


if __name__ == "__main__":
    main()
