#!/usr/bin/env python3
"""Protocol dynamics on the discrete-event simulator.

The benchmarks account for messages synchronously (GPSR paths are
deterministic), but the library also ships an event-driven kernel.  This
script runs it end to end:

1. nodes discover their neighbor tables purely via periodic beacons
   (the paper's Section 2 assumption, actually executed);
2. a sensor reading travels hop by hop to its Pool index node with
   per-hop latency, and we check the event-driven hop count equals the
   synchronous GPSR accounting.

Run:  python examples/event_driven_simulation.py
"""

from __future__ import annotations

from repro import Network, PoolSystem, deploy_uniform
from repro.events import Event
from repro.network.messages import MessageCategory
from repro.network.simulator import BeaconProtocol, Simulator


def main() -> None:
    topology = deploy_uniform(300, seed=5)
    simulator = Simulator(topology, hop_latency=0.02)

    # --- Phase 1: neighbor discovery by beaconing --------------------- #
    beacons = BeaconProtocol(simulator, interval=10.0)
    beacons.start()
    simulator.run(until=10.0)
    beacons.stop()
    discovered = [
        set(node.known_neighbors()) == set(topology.neighbors(node.node_id))
        for node in simulator.nodes
    ]
    beacon_msgs = simulator.stats.count(MessageCategory.BEACON)
    print(f"after one beacon interval: {sum(discovered)}/{topology.size} "
          f"nodes hold the exact ground-truth neighbor table "
          f"({beacon_msgs} beacon broadcasts)")

    # --- Phase 2: hop-by-hop event delivery --------------------------- #
    network = Network(topology)
    pool = PoolSystem(network, dimensions=3, seed=5)
    event = Event.of(0.82, 0.4, 0.1, source=3)
    receipt = pool.insert(event)  # synchronous accounting
    print(f"\nsynchronous insert: {receipt.hops} hops to node "
          f"{receipt.home_node} ({receipt.detail!r})")

    delivered: list[float] = []
    simulator.stats.reset()
    simulator.send(
        src=3,
        dst=receipt.home_node,
        category=MessageCategory.INSERT,
        payload=event,
        on_delivered=lambda msg: delivered.append(simulator.now),
    )
    simulator.run()
    sim_hops = simulator.stats.count(MessageCategory.INSERT)
    print(f"event-driven insert:  {sim_hops} hops, delivered at "
          f"t={delivered[0]:.2f}s (latency = hops x 0.02s)")
    assert sim_hops == receipt.hops, "both accountings must agree"

    # --- Phase 3: a node goes to sleep (workload sharing's low-power
    #     state) and the radio refuses to forward through it ----------- #
    path = network.router.path(3, receipt.home_node)
    if len(path) > 2:
        sleeper = path[1]
        simulator.nodes[sleeper].sleep()
        try:
            simulator.send(3, receipt.home_node, MessageCategory.INSERT)
            simulator.run()
        except Exception as exc:  # DeliveryError
            print(f"\nnode {sleeper} asleep mid-path -> {type(exc).__name__}: {exc}")
        simulator.nodes[sleeper].wake()

    print("\n(event-driven and synchronous accounting agree; see "
          "tests/network/test_simulator.py for the systematic check)")


if __name__ == "__main__":
    main()
